// Raw stats record model and the text file format.
//
// A collection produces one Record: a timestamp, the job id(s) active on
// the node, an optional mark ("begin"/"end" from the scheduler prolog and
// epilog, "rotate" from the daily log rotation, "procstart"/"procstop" from
// the shared-node hooks), and one RawBlock of counter values per device
// instance.
//
// The serialized form mirrors the C tool's format:
//
//   $tacc_stats 2.1
//   $hostname c401-101
//   $arch hsw
//   !cpu user,E,U=jiffies nice,E ...
//   !hsw instructions,E,W=48 ...
//   1443657600 1001 begin
//   cpu 0 818 0 5 900 2
//   hsw 0 123456 234567 ...
//   mem - 33554432 614400 262144 ...
//
// Header lines start with '$', schema lines with '!', a digit starts a new
// record (epoch-seconds, job list, optional mark), anything else is a data
// row "type device v0 v1 ...". Multiple job ids are comma-separated; "-"
// means no job / no device instance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "collect/schema.hpp"
#include "util/clock.hpp"

namespace tacc::collect {

inline constexpr std::string_view kFormatTag = "tacc_stats 2.1";

/// Counter values for one device instance of one type at one instant.
struct RawBlock {
  std::string type;    // schema type, e.g. "cpu", "hsw", "llite"
  std::string device;  // instance id: cpu number, socket, target, pid
  std::vector<std::uint64_t> values;  // parallel to the type's schema

  bool operator==(const RawBlock&) const = default;
};

/// Everything captured in one collection on one host.
struct Record {
  util::SimTime time = 0;
  std::vector<long> jobids;  // jobs active on the node (shared nodes: >1)
  std::string mark;          // "", "begin", "end", "rotate", ...
  std::vector<RawBlock> blocks;

  bool operator==(const Record&) const = default;
};

/// A host's stats stream: identity, schemas, and an ordered record list.
/// This is both the in-memory representation of a node-local log file
/// (cron mode) and the unit shipped through the broker (daemon mode sends
/// header + one record per message).
struct HostLog {
  std::string hostname;
  std::string arch;  // codename, informational
  std::vector<Schema> schemas;

  std::vector<Record> records;

  /// Returns the schema for a type, or nullptr. Uses the sorted index
  /// from reindex_schemas() when its size matches `schemas` (parse() and
  /// the archive keep it so); a size-mismatched index is ignored and the
  /// lookup falls back to a linear scan.
  const Schema* schema_for(std::string_view type) const noexcept;

  /// Rebuilds the type -> schema lookup index. Call after mutating
  /// `schemas` directly; parse()/parse_header() do it themselves. Must not
  /// race with schema_for() on the same log (build before sharing).
  /// Appending/removing schemas without reindexing merely staleness-drops
  /// the index (size mismatch -> linear scan); editing a schema's type in
  /// place without reindexing is unsupported — schema_for asserts index
  /// sortedness in debug builds.
  void reindex_schemas();

  /// Serializes header (format/hostname/arch/schema lines).
  std::string serialize_header() const;
  /// Serializes one record (timestamp line + data rows).
  static std::string serialize_record(const Record& record);
  /// Serializes header + all records.
  std::string serialize() const;

  /// Parses a full file. Throws std::invalid_argument on malformed input.
  static HostLog parse(std::string_view text);

  /// Parses the header lines ($format/$hostname/$arch/!schema) at the top
  /// of `text` into this log and returns the byte offset where the record
  /// body begins. Throws std::invalid_argument on malformed headers or a
  /// missing format line.
  std::size_t parse_header(std::string_view text);

  /// Parses records from a body (no header) into an existing log, using its
  /// schemas for validation. Appends to `records`.
  void parse_records(std::string_view body);

 private:
  // Indices into `schemas`, sorted by type; used by schema_for when its
  // size matches schemas.size() (the contract guarantees a same-size
  // index is sorted), ignored (stale) otherwise.
  std::vector<std::uint32_t> schema_index_;
};

}  // namespace tacc::collect
