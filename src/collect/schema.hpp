// Schema model for collected statistics.
//
// Every device type (cpu, hsw, imc, rapl, llite, ...) publishes a schema:
// an ordered list of keys with per-key properties. Schemas are serialized
// into the raw stats file header as "!<type> <key>,<flags> ..." lines, the
// same scheme the C tool uses, so a reader can decode files from nodes with
// different architectures or device sets.
//
// Per-key properties:
//   E        cumulative event counter (deltas are meaningful); absent = gauge
//   W=<bits> hardware counter width, for wraparound correction (default 64)
//   U=<unit> unit label (documentation + portal display)
//   S=<x>    scale: canonical value = raw * x (e.g. IB data words -> bytes,
//            RAPL register units -> microjoules)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tacc::collect {

struct SchemaEntry {
  std::string key;
  bool cumulative = true;
  int width_bits = 64;
  std::string unit;
  double scale = 1.0;
};

class Schema {
 public:
  Schema() = default;
  Schema(std::string type, std::vector<SchemaEntry> entries);

  const std::string& type() const noexcept { return type_; }
  const std::vector<SchemaEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  const SchemaEntry& entry(std::size_t i) const { return entries_.at(i); }

  /// Index of a key, or nullopt if the key is absent (e.g. L2/LLC hit
  /// counters when hyperthreading limited the PMC budget).
  std::optional<std::size_t> index_of(std::string_view key) const noexcept;

  /// Serializes to a "!type key,flags key,flags ..." header line (no
  /// trailing newline).
  std::string spec_line() const;

  /// Parses a spec line. Throws std::invalid_argument on malformed input.
  static Schema parse(std::string_view line);

 private:
  std::string type_;
  std::vector<SchemaEntry> entries_;
};

/// Applies wraparound correction: the delta from `prev` to `curr` for a
/// counter of the given width, assuming at most one wrap between samples.
std::uint64_t wrap_delta(std::uint64_t prev, std::uint64_t curr,
                         int width_bits) noexcept;

}  // namespace tacc::collect
