#include "collect/rawview.hpp"

namespace tacc::collect {

std::span<const long> RecordViewParser::parse_jobids(std::string_view list,
                                                     std::string_view line) {
  // Comma split with empty segments preserved (an empty segment is a bad
  // job id), matching util::split + parse_i64 in the legacy parser.
  std::size_t count = 1;
  for (const char c : list) count += (c == ',');
  const auto ids = arena_.alloc_array<long>(count);
  std::size_t n = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= list.size(); ++i) {
    if (i == list.size() || list[i] == ',') {
      const auto id = util::parse_i64(list.substr(start, i - start));
      if (!id) {
        throw std::invalid_argument("bad job id: " + std::string(line));
      }
      ids[n++] = static_cast<long>(*id);
      start = i + 1;
    }
  }
  return ids;
}

}  // namespace tacc::collect
