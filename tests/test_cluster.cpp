// Cluster construction: hostnames, lookup, failure injection, Phi fraction.
#include <gtest/gtest.h>

#include "simhw/cluster.hpp"

namespace tacc::simhw {
namespace {

TEST(Cluster, HostnameConvention) {
  EXPECT_EQ(Cluster::hostname_for(0, 40), "c400-001");
  EXPECT_EQ(Cluster::hostname_for(39, 40), "c400-040");
  EXPECT_EQ(Cluster::hostname_for(40, 40), "c401-001");
  EXPECT_EQ(Cluster::hostname_for(85, 40), "c402-006");
}

TEST(Cluster, BuildsRequestedNodes) {
  ClusterConfig cc;
  cc.num_nodes = 5;
  Cluster cluster(cc);
  EXPECT_EQ(cluster.size(), 5u);
  EXPECT_EQ(cluster.node(0).hostname(), "c400-001");
  EXPECT_EQ(cluster.node(4).hostname(), "c400-005");
}

TEST(Cluster, FindByHostname) {
  ClusterConfig cc;
  cc.num_nodes = 3;
  Cluster cluster(cc);
  ASSERT_NE(cluster.find("c400-002"), nullptr);
  EXPECT_EQ(cluster.find("c400-002")->hostname(), "c400-002");
  EXPECT_EQ(cluster.find("c999-999"), nullptr);
}

TEST(Cluster, FailAndRecover) {
  ClusterConfig cc;
  cc.num_nodes = 2;
  Cluster cluster(cc);
  cluster.fail_node(1);
  EXPECT_TRUE(cluster.node(1).failed());
  EXPECT_FALSE(cluster.node(0).failed());
  cluster.recover_node(1);
  EXPECT_FALSE(cluster.node(1).failed());
}

TEST(Cluster, PhiFractionZeroAndOne) {
  ClusterConfig cc;
  cc.num_nodes = 20;
  cc.phi_fraction = 0.0;
  Cluster none(cc);
  for (std::size_t i = 0; i < none.size(); ++i) {
    EXPECT_FALSE(none.node(i).config().has_phi);
  }
  cc.phi_fraction = 1.0;
  Cluster all(cc);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_TRUE(all.node(i).config().has_phi);
  }
}

TEST(Cluster, ConfigPropagatesToNodes) {
  ClusterConfig cc;
  cc.num_nodes = 2;
  cc.uarch = Microarch::SandyBridge;
  cc.topology = Topology{2, 6, true};
  cc.mem_total_kb = 64ULL * 1024 * 1024;
  cc.has_lustre = false;
  Cluster cluster(cc);
  const auto& node = cluster.node(0);
  EXPECT_EQ(node.arch().uarch, Microarch::SandyBridge);
  EXPECT_EQ(node.topology().logical_cpus(), 24);
  EXPECT_EQ(node.state().mem.total_kb, 64ULL * 1024 * 1024);
  EXPECT_FALSE(node.config().has_lustre);
}

}  // namespace
}  // namespace tacc::simhw
