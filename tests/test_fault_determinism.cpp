// Golden determinism: the same seed and FaultPlan must produce
// byte-identical archive contents and identical ResilienceStats across
// repeated runs — in both transport modes, with real consumer threads in
// the loop — and the downstream time-series load must stay byte-identical
// across worker thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "core/monitor.hpp"
#include "pipeline/ingest.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace tacc {
namespace {

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;  // 2016-01-04

simhw::Cluster make_cluster(int n) {
  simhw::ClusterConfig cc;
  cc.num_nodes = n;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 0.0;
  return simhw::Cluster(cc);
}

workload::JobSpec job_spec(long id, int nodes, util::SimTime start,
                           util::SimTime runtime) {
  workload::JobSpec job;
  job.jobid = id;
  job.user = "alice";
  job.uid = 1001;
  job.profile = "wrf";
  job.exe = "wrf.exe";
  job.nodes = nodes;
  job.wayness = 8;
  job.submit_time = start - util::kMinute;
  job.start_time = start;
  job.end_time = start + runtime;
  return job;
}

/// A busy fault schedule exercising every site except the queue limit
/// (dead-letter membership with a live concurrent consumer depends on
/// instantaneous queue depth, which is scheduling-dependent by design).
std::shared_ptr<util::FaultPlan> chaos_plan(std::uint64_t seed) {
  auto plan = std::make_shared<util::FaultPlan>(seed);
  util::FaultSpec publish;
  publish.drop_rate = 0.05;
  publish.duplicate_rate = 0.02;
  publish.delay_rate = 0.1;
  publish.delay_min = util::kSecond;
  publish.delay_max = 30 * util::kSecond;
  plan->set(std::string(util::kFaultBrokerPublish), publish);
  util::FaultSpec daemon;
  daemon.error_rate = 0.02;
  daemon.outages.push_back({kStart + util::kHour, kStart + 2 * util::kHour});
  plan->set(std::string(util::kFaultDaemonPublish), daemon);
  util::FaultSpec crash;
  crash.error_rate = 0.05;
  plan->set(std::string(util::kFaultConsumerCrash), crash);
  util::FaultSpec rsync;
  rsync.error_rate = 0.3;
  plan->set(std::string(util::kFaultCronRsync), rsync);
  util::FaultSpec disk;
  disk.error_rate = 0.02;
  plan->set(std::string(util::kFaultCronDisk), disk);
  return plan;
}

struct RunResult {
  std::string archive_bytes;
  util::ResilienceStats resilience;
  std::uint64_t published_unique = 0;
  std::size_t total_records = 0;
};

std::string fingerprint(const transport::RawArchive& archive) {
  auto hosts = archive.hosts();
  std::sort(hosts.begin(), hosts.end());
  std::string out;
  for (const auto& host : hosts) {
    out += "== " + host + " ==\n";
    out += archive.log(host).serialize();
  }
  return out;
}

RunResult run_once(core::TransportMode mode, std::uint64_t seed) {
  auto cluster = make_cluster(4);
  core::MonitorConfig mc;
  mc.mode = mode;
  mc.start = kStart;
  mc.online_analysis = false;
  mc.fault_plan = chaos_plan(seed);
  core::ClusterMonitor monitor(cluster, mc);

  const auto job = job_spec(500, 4, kStart, 3 * util::kHour);
  monitor.job_started(job, {0, 1, 2, 3});
  monitor.advance_to(kStart + 3 * util::kHour);
  monitor.job_ended(job.jobid);
  if (mode == core::TransportMode::Cron) {
    // Through the next staging windows so rsync faults and catch-up run.
    monitor.advance_to(kStart + 2 * util::kDay + 6 * util::kHour);
  } else {
    monitor.advance_to(kStart + 4 * util::kHour);
  }
  monitor.drain();

  RunResult result;
  result.archive_bytes = fingerprint(monitor.archive());
  result.resilience = monitor.resilience_stats();
  result.published_unique = monitor.published_unique();
  result.total_records = monitor.archive().total_records();
  return result;
}

TEST(FaultDeterminism, DaemonModeGoldenAcrossRuns) {
  const auto a = run_once(core::TransportMode::Daemon, 2024);
  const auto b = run_once(core::TransportMode::Daemon, 2024);
  EXPECT_EQ(a.archive_bytes, b.archive_bytes);
  EXPECT_EQ(a.resilience, b.resilience);
  EXPECT_EQ(a.published_unique, b.published_unique);
  EXPECT_EQ(a.total_records, b.total_records);
  // The schedule actually fired: this is not vacuous determinism.
  EXPECT_GT(a.resilience.injected_drops, 0u);
  EXPECT_GT(a.resilience.injected_delays, 0u);
  EXPECT_GT(a.resilience.retries, 0u);
  EXPECT_GT(a.resilience.spooled, 0u);  // the 1h outage forces spooling
  EXPECT_EQ(a.resilience.replayed, a.resilience.spooled);
  // Exactly-once end to end: every unique record is archived once.
  EXPECT_EQ(a.total_records, a.published_unique);
}

TEST(FaultDeterminism, CronModeGoldenAcrossRuns) {
  const auto a = run_once(core::TransportMode::Cron, 2024);
  const auto b = run_once(core::TransportMode::Cron, 2024);
  EXPECT_EQ(a.archive_bytes, b.archive_bytes);
  EXPECT_EQ(a.resilience, b.resilience);
  EXPECT_EQ(a.total_records, b.total_records);
  EXPECT_GT(a.resilience.injected_errors, 0u);
}

TEST(FaultDeterminism, DifferentSeedsDiverge) {
  const auto a = run_once(core::TransportMode::Daemon, 1);
  const auto b = run_once(core::TransportMode::Daemon, 2);
  // Same workload, different fault dice: the resilience counters differ
  // (while conservation still holds for each).
  EXPECT_NE(a.resilience, b.resilience);
  EXPECT_EQ(a.total_records, a.published_unique);
  EXPECT_EQ(b.total_records, b.published_unique);
}

TEST(FaultDeterminism, TsdbLoadGoldenAcrossThreadCounts) {
  // One faulty daemon-mode run, then the archive -> time-series load at
  // 1, 2, and 8 workers: query results must be byte-identical.
  auto cluster = make_cluster(4);
  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = kStart;
  mc.online_analysis = false;
  mc.fault_plan = chaos_plan(7);
  core::ClusterMonitor monitor(cluster, mc);
  const auto job = job_spec(501, 4, kStart, 2 * util::kHour);
  monitor.job_started(job, {0, 1, 2, 3});
  monitor.advance_to(kStart + 2 * util::kHour);
  monitor.job_ended(job.jobid);
  monitor.drain();
  ASSERT_GT(monitor.archive().total_records(), 0u);

  tsdb::Store serial(tsdb::StoreOptions{16});
  const auto serial_stats =
      pipeline::ingest_archive_tsdb(serial, monitor.archive(), nullptr);
  pipeline::TsdbIngestOptions opts;
  opts.batch_points = 64;  // force mid-host flushes
  for (const std::size_t workers : {2u, 8u}) {
    util::ThreadPool pool(workers);
    tsdb::Store store(tsdb::StoreOptions{4});
    const auto stats =
        pipeline::ingest_archive_tsdb(store, monitor.archive(), &pool, opts);
    EXPECT_EQ(stats.points, serial_stats.points);
    EXPECT_EQ(stats.series, serial_stats.series);
    EXPECT_EQ(store.num_points(), serial.num_points());
    tsdb::Query q;
    q.metric = "taccstats.cpu.user";
    q.group_by = {"host"};
    const auto a = serial.query(q);
    const auto b = store.query(q);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].group_tags, b[i].group_tags);
      ASSERT_EQ(a[i].points.size(), b[i].points.size());
      for (std::size_t p = 0; p < a[i].points.size(); ++p) {
        EXPECT_EQ(a[i].points[p].time, b[i].points[p].time);
        EXPECT_EQ(a[i].points[p].value, b[i].points[p].value);
      }
    }
  }
}

}  // namespace
}  // namespace tacc
