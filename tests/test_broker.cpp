// Message broker: routing, acknowledgement, redelivery, concurrency.
#include <gtest/gtest.h>

#include <thread>

#include "transport/broker.hpp"

namespace tacc::transport {
namespace {

using namespace std::chrono_literals;

TEST(Broker, DirectRouting) {
  Broker broker;
  broker.bind("q1", "stats.c400-001");
  EXPECT_EQ(broker.publish("stats.c400-001", "hello"), 1u);
  EXPECT_EQ(broker.publish("stats.c400-002", "nope"), 0u);
  const auto msg = broker.consume("q1", 100ms);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->body, "hello");
  EXPECT_EQ(msg->routing_key, "stats.c400-001");
  EXPECT_EQ(broker.stats().unroutable, 1u);
}

TEST(Broker, HashPatternMatchesEverything) {
  Broker broker;
  broker.bind("all", "#");
  EXPECT_EQ(broker.publish("anything.at.all", "x"), 1u);
  EXPECT_EQ(broker.depth("all"), 1u);
}

TEST(Broker, StarSuffixMatchesOneSegment) {
  Broker broker;
  broker.bind("q", "stats.*");
  EXPECT_EQ(broker.publish("stats.c400-001", "a"), 1u);
  EXPECT_EQ(broker.publish("stats.c400-001.extra", "b"), 0u);
  EXPECT_EQ(broker.publish("other.c400-001", "c"), 0u);
}

TEST(Broker, FanOutCopiesToAllQueues) {
  Broker broker;
  broker.bind("q1", "#");
  broker.bind("q2", "stats.*");
  EXPECT_EQ(broker.publish("stats.n1", "x"), 2u);
  EXPECT_EQ(broker.depth("q1"), 1u);
  EXPECT_EQ(broker.depth("q2"), 1u);
}

TEST(Broker, ConsumeTimesOutOnEmpty) {
  Broker broker;
  broker.declare_queue("q");
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(broker.consume("q", 30ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
}

TEST(Broker, AckRemovesUnacked) {
  Broker broker;
  broker.bind("q", "#");
  broker.publish("k", "m");
  const auto msg = broker.consume("q", 100ms);
  ASSERT_TRUE(msg);
  broker.ack("q", msg->delivery_tag);
  EXPECT_EQ(broker.stats().acked, 1u);
  // Requeue after ack is a no-op.
  broker.requeue("q", msg->delivery_tag);
  EXPECT_EQ(broker.depth("q"), 0u);
}

TEST(Broker, RequeueRedelivers) {
  Broker broker;
  broker.bind("q", "#");
  broker.publish("k", "m1");
  const auto msg = broker.consume("q", 100ms);
  ASSERT_TRUE(msg);
  EXPECT_EQ(broker.depth("q"), 0u);
  broker.requeue("q", msg->delivery_tag);
  EXPECT_EQ(broker.depth("q"), 1u);
  const auto again = broker.consume("q", 100ms);
  ASSERT_TRUE(again);
  EXPECT_EQ(again->body, "m1");
  EXPECT_EQ(broker.stats().redelivered, 1u);
}

TEST(Broker, FifoOrder) {
  Broker broker;
  broker.bind("q", "#");
  for (int i = 0; i < 10; ++i) broker.publish("k", std::to_string(i));
  for (int i = 0; i < 10; ++i) {
    const auto msg = broker.consume("q", 100ms);
    ASSERT_TRUE(msg);
    EXPECT_EQ(msg->body, std::to_string(i));
    broker.ack("q", msg->delivery_tag);
  }
}

TEST(Broker, ShutdownWakesConsumers) {
  Broker broker;
  broker.declare_queue("q");
  std::thread waiter([&] {
    EXPECT_FALSE(broker.consume("q", 10s).has_value());
  });
  std::this_thread::sleep_for(20ms);
  broker.shutdown();
  waiter.join();
  EXPECT_TRUE(broker.is_shut_down());
}

TEST(Broker, ConcurrentProducersNoLoss) {
  Broker broker;
  broker.bind("q", "#");
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&broker, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        broker.publish("k", std::to_string(p * kPerProducer + i));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  std::size_t received = 0;
  std::thread consumer([&] {
    while (received < kProducers * kPerProducer) {
      const auto msg = broker.consume("q", 1s);
      if (!msg) break;
      seen[std::stoul(msg->body)] = true;
      broker.ack("q", msg->delivery_tag);
      ++received;
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(received, static_cast<std::size_t>(kProducers * kPerProducer));
  for (const bool s : seen) EXPECT_TRUE(s);
  const auto stats = broker.stats();
  EXPECT_EQ(stats.published, static_cast<std::uint64_t>(kProducers *
                                                        kPerProducer));
  EXPECT_EQ(stats.delivered, stats.acked);
}

}  // namespace
}  // namespace tacc::transport
