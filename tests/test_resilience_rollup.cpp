// ResilienceStats roll-up correctness: merge() must cover every field (a
// silently-dropped counter is exactly the bug this file exists to catch),
// and the monitor's per-tier rollup must sum — field by field, without
// going through merge() itself — to the cluster-wide resilience view.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "util/fault.hpp"

namespace tacc {
namespace {

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;  // 2016-01-04

// If this fires, a field was added to (or removed from) ResilienceStats:
// update merge(), the field list below, and tier_stats() documentation.
static_assert(sizeof(util::ResilienceStats) == 13 * sizeof(std::uint64_t),
              "ResilienceStats changed: update merge() and this test");

util::ResilienceStats distinct_stats(std::uint64_t base) {
  util::ResilienceStats s;
  s.injected_drops = base + 1;
  s.injected_duplicates = base + 2;
  s.injected_delays = base + 3;
  s.injected_errors = base + 4;
  s.retries = base + 5;
  s.spooled = base + 6;
  s.replayed = base + 7;
  s.spool_dropped = base + 8;
  s.dead_lettered = base + 9;
  s.requeued = base + 10;
  s.deduped = base + 11;
  s.paused_windows = base + 12;
  s.resumed_windows = base + 13;
  return s;
}

/// Field-by-field sum, deliberately NOT via merge(): the independent
/// accumulator the merge implementation is checked against.
util::ResilienceStats hand_sum(const std::vector<util::ResilienceStats>& v) {
  util::ResilienceStats t;
  for (const auto& s : v) {
    t.injected_drops += s.injected_drops;
    t.injected_duplicates += s.injected_duplicates;
    t.injected_delays += s.injected_delays;
    t.injected_errors += s.injected_errors;
    t.retries += s.retries;
    t.spooled += s.spooled;
    t.replayed += s.replayed;
    t.spool_dropped += s.spool_dropped;
    t.dead_lettered += s.dead_lettered;
    t.requeued += s.requeued;
    t.deduped += s.deduped;
    t.paused_windows += s.paused_windows;
    t.resumed_windows += s.resumed_windows;
  }
  return t;
}

TEST(ResilienceRollup, MergeCoversEveryField) {
  const auto a = distinct_stats(100);
  const auto b = distinct_stats(2000);
  util::ResilienceStats merged = a;
  merged.merge(b);
  const auto expected = hand_sum({a, b});
  EXPECT_EQ(merged.injected_drops, expected.injected_drops);
  EXPECT_EQ(merged.injected_duplicates, expected.injected_duplicates);
  EXPECT_EQ(merged.injected_delays, expected.injected_delays);
  EXPECT_EQ(merged.injected_errors, expected.injected_errors);
  EXPECT_EQ(merged.retries, expected.retries);
  EXPECT_EQ(merged.spooled, expected.spooled);
  EXPECT_EQ(merged.replayed, expected.replayed);
  EXPECT_EQ(merged.spool_dropped, expected.spool_dropped);
  EXPECT_EQ(merged.dead_lettered, expected.dead_lettered);
  EXPECT_EQ(merged.requeued, expected.requeued);
  EXPECT_EQ(merged.deduped, expected.deduped);
  EXPECT_EQ(merged.paused_windows, expected.paused_windows);
  EXPECT_EQ(merged.resumed_windows, expected.resumed_windows);
  EXPECT_EQ(merged, expected);  // and operator== agrees with all of the above
}

TEST(ResilienceRollup, TierStatsSumToClusterResilience) {
  // A busy tree run: broker faults, aggregator faults, consumer crashes,
  // watermark pauses — every counter family gets a chance to be nonzero.
  auto plan = std::make_shared<util::FaultPlan>(424242);
  util::FaultSpec publish;
  publish.drop_rate = 0.05;
  publish.duplicate_rate = 0.05;
  publish.delay_rate = 0.1;
  publish.delay_min = util::kSecond;
  publish.delay_max = 10 * util::kSecond;
  plan->set(std::string(util::kFaultBrokerPublish), publish);
  util::FaultSpec daemon;
  daemon.error_rate = 0.05;
  plan->set(std::string(util::kFaultDaemonPublish), daemon);
  util::FaultSpec agg_publish;
  agg_publish.error_rate = 0.2;
  plan->set(std::string(util::kFaultAggregatorPublish), agg_publish);
  util::FaultSpec agg_crash;
  agg_crash.error_rate = 0.2;
  plan->set(std::string(util::kFaultAggregatorCrash), agg_crash);
  util::FaultSpec crash;
  crash.error_rate = 0.05;
  plan->set(std::string(util::kFaultConsumerCrash), crash);

  simhw::ClusterConfig cc;
  cc.num_nodes = 4;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 0.0;
  simhw::Cluster cluster(cc);

  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = kStart;
  mc.online_analysis = false;
  mc.fault_plan = plan;
  mc.consumer_options.dedup_window = 0;
  mc.topology.leaf_brokers = 4;
  mc.topology.fanout = 2;
  mc.topology.batch_records = 4;
  core::ClusterMonitor monitor(cluster, mc);
  monitor.advance_to(kStart + util::kHour);
  monitor.crash_consumer();
  monitor.advance_to(kStart + 2 * util::kHour);
  monitor.restart_consumer();
  monitor.advance_to(kStart + 3 * util::kHour);
  monitor.drain();

  const auto rows = monitor.tier_stats();
  ASSERT_EQ(rows.size(), monitor.topology().tier_count());
  std::vector<util::ResilienceStats> per_tier;
  for (const auto& row : rows) per_tier.push_back(row.resilience);
  const auto summed = hand_sum(per_tier);
  const auto total = monitor.resilience_stats();

  // The contract documented on ClusterMonitor::tier_stats(): summing the
  // rows reproduces resilience_stats() exactly. Field-by-field so a
  // counter dropped from either path names itself in the failure.
  EXPECT_EQ(summed.injected_drops, total.injected_drops);
  EXPECT_EQ(summed.injected_duplicates, total.injected_duplicates);
  EXPECT_EQ(summed.injected_delays, total.injected_delays);
  EXPECT_EQ(summed.injected_errors, total.injected_errors);
  EXPECT_EQ(summed.retries, total.retries);
  EXPECT_EQ(summed.spooled, total.spooled);
  EXPECT_EQ(summed.replayed, total.replayed);
  EXPECT_EQ(summed.spool_dropped, total.spool_dropped);
  EXPECT_EQ(summed.dead_lettered, total.dead_lettered);
  EXPECT_EQ(summed.requeued, total.requeued);
  EXPECT_EQ(summed.deduped, total.deduped);
  EXPECT_EQ(summed.paused_windows, total.paused_windows);
  EXPECT_EQ(summed.resumed_windows, total.resumed_windows);
  EXPECT_EQ(summed, total);

  // The run was not vacuous: the fault families all fired somewhere.
  EXPECT_GT(total.injected_drops, 0u);
  EXPECT_GT(total.injected_errors, 0u);
  EXPECT_GT(total.deduped + total.requeued, 0u);

  // The rendered table has one line per tier plus a header.
  const auto table = monitor.topology_stats();
  EXPECT_NE(table.find("tier"), std::string::npos);
  EXPECT_NE(table.find("paused"), std::string::npos);
}

}  // namespace
}  // namespace tacc
