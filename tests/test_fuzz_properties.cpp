// Robustness and cross-module property tests: the raw-file parser must
// never crash on corrupted input (the consumer faces arbitrary broker
// bytes), the TSDB's on-disk readers must detect any damage rather than
// return wrong points, and several algebraic invariants must hold across
// modules.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "collect/registry.hpp"
#include "simhw/node.hpp"
#include "tsdb/blockfile.hpp"
#include "tsdb/store.hpp"
#include "tsdb/wal.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/engine.hpp"

namespace tacc {
namespace {

std::string sample_chunk() {
  simhw::NodeConfig nc;
  nc.topology = simhw::Topology{1, 2, false};
  simhw::Node node(nc);
  collect::HostSampler sampler(node);
  auto log = sampler.make_log();
  log.records.push_back(sampler.sample(1451606400LL * util::kSecond, {1},
                                       "begin"));
  return log.serialize();
}

TEST(FuzzParse, RandomMutationsNeverCrash) {
  const std::string base = sample_chunk();
  util::Rng rng("fuzz.mutate", 99);
  int parsed = 0;
  int rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = base;
    const int mutations = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      switch (rng.uniform_int(0, 3)) {
        case 0:
          text[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:
          text.erase(pos, 1);
          break;
        case 2:
          text.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
          break;
        default:
          text[pos] = '\n';
          break;
      }
    }
    try {
      const auto log = collect::HostLog::parse(text);
      ++parsed;
      (void)log;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
    // Any other exception type (or a crash) fails the test.
  }
  EXPECT_EQ(parsed + rejected, 500);
  EXPECT_GT(rejected, 0);  // mutations do get caught
}

TEST(FuzzParse, RandomGarbageNeverCrashes) {
  util::Rng rng("fuzz.garbage", 7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int len = static_cast<int>(rng.uniform_int(0, 2000));
    for (int i = 0; i < len; ++i) {
      text += static_cast<char>(rng.uniform_int(1, 255));
    }
    try {
      (void)collect::HostLog::parse(text);
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();
}

TEST(FuzzParse, TruncationsNeverCrash) {
  const std::string base = sample_chunk();
  for (std::size_t cut = 0; cut < base.size(); cut += 7) {
    try {
      (void)collect::HostLog::parse(base.substr(0, cut));
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// On-disk format robustness (segment / WAL / manifest readers).
//
// The contract under arbitrary damage: a reader either returns exactly
// the bytes the writer produced (for the WAL, an exact *prefix* of the
// written records) or throws CorruptionError carrying an in-bounds
// offset. It never crashes and never returns wrong points. Every
// structural unit carries a CRC32C, whose (x+1) polynomial factor
// detects all 1-3 bit errors — so the seeded flips below must all be
// caught, and any "accepted" mutant must decode identically.

namespace fsp = std::filesystem;

std::string persist_fresh_dir(const std::string& name) {
  const fsp::path dir = fsp::path(::testing::TempDir()) / name;
  fsp::remove_all(dir);
  fsp::create_directories(dir);
  return dir.string();
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

struct FlatSeries {
  std::string metric;
  tsdb::TagSet tags;
  std::uint64_t cum_sealed = 0;
  std::vector<tsdb::DataPoint> points;
};

std::vector<FlatSeries> flatten_segment(const tsdb::LoadedSegment& seg) {
  std::vector<FlatSeries> out;
  for (const auto& s : seg.series) {
    FlatSeries f;
    f.metric = s.metric;
    f.tags = s.tags;
    f.cum_sealed = s.cum_sealed;
    for (const auto& b : s.blocks) b->decode_append(f.points);
    out.push_back(std::move(f));
  }
  return out;
}

void expect_points_eq(const std::vector<tsdb::DataPoint>& a,
                      const std::vector<tsdb::DataPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].value),
              std::bit_cast<std::uint64_t>(b[i].value));
  }
}

void expect_record_eq(const tsdb::WalRecord& a, const tsdb::WalRecord& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.metric, b.metric);
  EXPECT_EQ(a.tags, b.tags);
  EXPECT_EQ(a.cum_sealed, b.cum_sealed);
  expect_points_eq(a.points, b.points);
}

/// A real store directory: one flushed segment, one live WAL generation
/// whose checkpoint is followed by batch records, and a manifest — plus
/// the clean decode of each, the ground truth the mutants are judged
/// against.
struct PersistFixture {
  std::string dir;
  std::string segment_path;
  std::string wal_path;
  std::vector<FlatSeries> clean_series;
  tsdb::WalReplay clean_wal;
  tsdb::Manifest clean_manifest;
};

PersistFixture build_persist_fixture(const std::string& name) {
  PersistFixture fx;
  fx.dir = persist_fresh_dir(name);
  tsdb::StoreOptions o;
  o.data_dir = fx.dir;
  o.shards = 1;
  o.block_points = 16;
  {
    tsdb::Store s(o);
    util::Rng rng("fuzz.persist", 4242);
    constexpr util::SimTime kT0 = 1451606400LL * util::kSecond;
    const auto salted = [&](int i) {
      switch (i % 37) {
        case 0:
          return std::numeric_limits<double>::quiet_NaN();
        case 1:
          return -0.0;
        case 2:
          return std::numeric_limits<double>::infinity();
        default:
          return rng.uniform(-1.0e6, 1.0e6);
      }
    };
    for (const char* host : {"c400-000", "c400-001"}) {
      std::vector<tsdb::DataPoint> pts;
      for (int i = 0; i < 120; ++i) {
        pts.push_back({kT0 + i * util::kMinute, salted(i)});
      }
      s.put_batch("taccstats.cpu.user", {{"host", host}}, pts);
    }
    s.seal_all();
    s.flush();
    // Post-flush puts land as batch records in the rotated WAL.
    for (const char* host : {"c400-000", "c400-001"}) {
      std::vector<tsdb::DataPoint> pts;
      for (int i = 120; i < 160; ++i) {
        pts.push_back({kT0 + i * util::kMinute, salted(i)});
      }
      s.put_batch("taccstats.cpu.user", {{"host", host}}, pts);
    }
    // Crash-style destruction: the WAL keeps its batch tail.
  }
  for (const auto& entry : fsp::directory_iterator(fx.dir)) {
    const std::string fn = entry.path().filename().string();
    if (fn.starts_with("seg-")) fx.segment_path = entry.path().string();
    if (fn.starts_with("wal-")) fx.wal_path = entry.path().string();
  }
  EXPECT_FALSE(fx.segment_path.empty());
  EXPECT_FALSE(fx.wal_path.empty());
  fx.clean_series = flatten_segment(tsdb::load_segment(fx.segment_path));
  fx.clean_wal = tsdb::replay_wal(fx.wal_path);
  fx.clean_manifest = tsdb::read_manifest(fx.dir);
  EXPECT_EQ(fx.clean_series.size(), 2u);
  EXPECT_GT(fx.clean_wal.records.size(), 2u);  // checkpoint + batches
  EXPECT_TRUE(fx.clean_wal.checkpoint_complete);
  return fx;
}

TEST(FuzzPersist, SegmentBitFlipsNeverCrashAndNeverLie) {
  const PersistFixture fx =
      build_persist_fixture("fuzz_persist_seg_flip");
  const std::string clean = read_bytes(fx.segment_path);
  ASSERT_GT(clean.size(), 64u);
  const std::string mutant = fx.dir + "/mutant.blk";
  util::Rng rng("fuzz.seg.flip", 11);
  int detected = 0;
  for (int trial = 0; trial < 250; ++trial) {
    std::string bytes = clean;
    const int flips = static_cast<int>(rng.uniform_int(1, 3));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<char>(1 << rng.uniform_int(0, 7));
    }
    write_bytes(mutant, bytes);
    try {
      const auto seg = tsdb::load_segment(mutant);
      // Accepted despite flipped bits: only legal if the decode is
      // still exactly the original data (it never lies).
      const auto flat = flatten_segment(seg);
      ASSERT_EQ(flat.size(), fx.clean_series.size());
      for (std::size_t i = 0; i < flat.size(); ++i) {
        EXPECT_EQ(flat[i].metric, fx.clean_series[i].metric);
        EXPECT_EQ(flat[i].tags, fx.clean_series[i].tags);
        EXPECT_EQ(flat[i].cum_sealed, fx.clean_series[i].cum_sealed);
        expect_points_eq(flat[i].points, fx.clean_series[i].points);
      }
    } catch (const tsdb::CorruptionError& e) {
      ++detected;
      EXPECT_LE(e.offset(), bytes.size()) << "damage offset out of bounds";
    }
    // Any other exception type (or a crash) fails the test.
  }
  EXPECT_GT(detected, 0);
}

TEST(FuzzPersist, SegmentTruncationsAlwaysDetected) {
  const PersistFixture fx =
      build_persist_fixture("fuzz_persist_seg_trunc");
  const std::string clean = read_bytes(fx.segment_path);
  const std::string mutant = fx.dir + "/mutant.blk";
  // Every proper prefix is missing the footer commit marker: the reader
  // must refuse it — a torn segment write may never surface as data.
  for (std::size_t cut = 0; cut < clean.size();
       cut += (cut < 64 ? 1 : 7)) {
    write_bytes(mutant, clean.substr(0, cut));
    try {
      (void)tsdb::load_segment(mutant);
      ADD_FAILURE() << "truncated segment accepted at cut " << cut;
    } catch (const tsdb::CorruptionError& e) {
      EXPECT_LE(e.offset(), clean.size()) << "cut " << cut;
    }
  }
}

TEST(FuzzPersist, WalDamageYieldsExactReplayPrefix) {
  const PersistFixture fx = build_persist_fixture("fuzz_persist_wal");
  const std::string clean = read_bytes(fx.wal_path);
  ASSERT_GT(clean.size(), 32u);
  constexpr std::size_t kHeaderSize = 24;  // magic|version|shard|gen|crc
  const std::string mutant = fx.dir + "/mutant.log";
  util::Rng rng("fuzz.wal.flip", 13);
  int torn = 0;
  for (int trial = 0; trial < 250; ++trial) {
    std::string bytes = clean;
    std::size_t first_damage = bytes.size();
    bool truncated = false;
    if (rng.uniform_int(0, 3) == 0) {
      truncated = true;
      first_damage = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes.resize(first_damage);
    } else {
      const int flips = static_cast<int>(rng.uniform_int(1, 3));
      for (int f = 0; f < flips; ++f) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
        bytes[pos] ^= static_cast<char>(1 << rng.uniform_int(0, 7));
        first_damage = std::min(first_damage, pos);
      }
    }
    write_bytes(mutant, bytes);
    try {
      const tsdb::WalReplay r = tsdb::replay_wal(mutant);
      // Whatever survives must be an exact prefix of the clean records:
      // a replayed record is an acknowledged put, and acknowledged puts
      // are never reordered or altered by damage behind them.
      ASSERT_LE(r.records.size(), fx.clean_wal.records.size());
      for (std::size_t i = 0; i < r.records.size(); ++i) {
        expect_record_eq(r.records[i], fx.clean_wal.records[i]);
      }
      if (r.torn_offset.has_value()) {
        ++torn;
        EXPECT_LE(*r.torn_offset, bytes.size());
      } else if (!truncated) {
        // No reported tear from bit flips alone: every frame validated,
        // so nothing may be missing. (A truncation cut exactly on a
        // frame boundary is indistinguishable from a shorter clean
        // file, so it legitimately reports no tear.)
        EXPECT_EQ(r.records.size(), fx.clean_wal.records.size());
      }
    } catch (const tsdb::CorruptionError& e) {
      // Only header damage may reject the whole file.
      EXPECT_LT(first_damage, kHeaderSize)
          << "body damage must tear, not reject";
      EXPECT_LE(e.offset(), bytes.size());
    }
  }
  EXPECT_GT(torn, 0);
}

TEST(FuzzPersist, ManifestDamageNeverLies) {
  const PersistFixture fx = build_persist_fixture("fuzz_persist_manifest");
  const std::string clean = read_bytes(fx.dir + "/MANIFEST");
  const std::string mdir = persist_fresh_dir("fuzz_persist_manifest_mut");
  util::Rng rng("fuzz.manifest", 17);
  int detected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = clean;
    if (rng.uniform_int(0, 2) == 0) {
      bytes.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1)));
    } else {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] ^= static_cast<char>(1 << rng.uniform_int(0, 7));
    }
    write_bytes(mdir + "/MANIFEST", bytes);
    try {
      const tsdb::Manifest m = tsdb::read_manifest(mdir);
      EXPECT_EQ(m.next_seq, fx.clean_manifest.next_seq);
      EXPECT_EQ(m.segments, fx.clean_manifest.segments);
    } catch (const tsdb::CorruptionError& e) {
      ++detected;
      EXPECT_LE(e.offset(), bytes.size());
    }
  }
  EXPECT_GT(detected, 0);
}

TEST(EngineProperty, CountersScaleLinearlyWithRuntime) {
  // Doubling a steady job's runtime doubles every cumulative counter
  // (within per-quantum rounding), because demand is stationary.
  auto run = [](util::SimTime runtime) {
    simhw::ClusterConfig cc;
    cc.num_nodes = 1;
    cc.topology = simhw::Topology{2, 4, false};
    simhw::Cluster cluster(cc);
    workload::Engine engine(cluster, 0);
    workload::JobSpec job;
    job.jobid = 1;
    job.profile = "md_engine";
    job.exe = "namd2";
    job.nodes = 1;
    job.wayness = 8;
    job.start_time = 0;
    job.end_time = runtime * 4;  // phase logic far away
    engine.start_job(job, {0});
    engine.advance(runtime);
    return cluster.node(0).state();
  };
  const auto one = run(util::kHour);
  const auto two = run(2 * util::kHour);
  EXPECT_NEAR(static_cast<double>(two.cores[0].instructions),
              2.0 * static_cast<double>(one.cores[0].instructions),
              0.02 * static_cast<double>(two.cores[0].instructions));
  EXPECT_NEAR(static_cast<double>(two.sockets[0].energy_pkg_uj),
              2.0 * static_cast<double>(one.sockets[0].energy_pkg_uj),
              0.02 * static_cast<double>(two.sockets[0].energy_pkg_uj));
  EXPECT_NEAR(static_cast<double>(two.ib.tx_bytes),
              2.0 * static_cast<double>(one.ib.tx_bytes),
              0.05 * static_cast<double>(two.ib.tx_bytes));
}

TEST(EngineProperty, AdvanceSlicingIsExactlyEquivalent) {
  // One advance(1h) == sixty advance(1m): the quantum integration makes
  // slicing invisible.
  auto run = [](int slices) {
    simhw::ClusterConfig cc;
    cc.num_nodes = 1;
    cc.topology = simhw::Topology{2, 4, false};
    simhw::Cluster cluster(cc);
    workload::Engine engine(cluster, 0);
    workload::JobSpec job;
    job.jobid = 9;
    job.profile = "genomics_io";
    job.exe = "blastn";
    job.nodes = 1;
    job.wayness = 8;
    job.start_time = 0;
    job.end_time = 4 * util::kHour;
    engine.start_job(job, {0});
    const util::SimTime step = util::kHour / slices;
    for (int i = 0; i < slices; ++i) engine.advance(step);
    return cluster.node(0).state();
  };
  const auto coarse = run(1);
  const auto fine = run(60);
  EXPECT_EQ(coarse.cores[0].instructions, fine.cores[0].instructions);
  EXPECT_EQ(coarse.lustre.mdc_reqs, fine.lustre.mdc_reqs);
  EXPECT_EQ(coarse.ib.tx_bytes, fine.ib.tx_bytes);
  EXPECT_EQ(coarse.sockets[0].energy_pkg_uj, fine.sockets[0].energy_pkg_uj);
}

TEST(TsdbProperty, GroupBySumsPartitionTheTotal) {
  // Sum over group-by groups == ungrouped sum, for any tag partition.
  util::Rng rng("tsdb.prop", 5);
  tsdb::Store store;
  for (int i = 0; i < 300; ++i) {
    store.put("m",
              {{"host", "h" + std::to_string(rng.uniform_int(0, 7))},
               {"user", "u" + std::to_string(rng.uniform_int(0, 3))}},
              rng.uniform_int(0, 9) * util::kMinute, rng.uniform(0.0, 10.0));
  }
  tsdb::Query total_q;
  total_q.metric = "m";
  total_q.aggregator = tsdb::Aggregator::Sum;
  total_q.downsample = util::kHour;
  const auto total = store.query(total_q);
  ASSERT_EQ(total.size(), 1u);

  for (const char* tag : {"host", "user"}) {
    tsdb::Query grouped = total_q;
    grouped.group_by = {tag};
    double sum = 0.0;
    for (const auto& series : store.query(grouped)) {
      for (const auto& p : series.points) sum += p.value;
    }
    double expected = 0.0;
    for (const auto& p : total[0].points) expected += p.value;
    EXPECT_NEAR(sum, expected, 1e-9) << tag;
  }
}

TEST(StatsProperty, MergeIsAssociativeAcrossRandomSplits) {
  util::Rng rng("stats.prop", 31);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(5.0, 3.0));
  util::RunningStat whole;
  for (const double x : xs) whole.add(x);
  for (int trial = 0; trial < 10; ++trial) {
    const auto cut1 = static_cast<std::size_t>(rng.uniform_int(0, 999));
    const auto cut2 = static_cast<std::size_t>(rng.uniform_int(0, 999));
    const auto lo = std::min(cut1, cut2);
    const auto hi = std::max(cut1, cut2);
    util::RunningStat a, b, c;
    for (std::size_t i = 0; i < lo; ++i) a.add(xs[i]);
    for (std::size_t i = lo; i < hi; ++i) b.add(xs[i]);
    for (std::size_t i = hi; i < xs.size(); ++i) c.add(xs[i]);
    a.merge(b);
    a.merge(c);
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-7);
  }
}

}  // namespace
}  // namespace tacc
