// Robustness and cross-module property tests: the raw-file parser must
// never crash on corrupted input (the consumer faces arbitrary broker
// bytes), and several algebraic invariants must hold across modules.
#include <gtest/gtest.h>

#include <cmath>

#include "collect/registry.hpp"
#include "simhw/node.hpp"
#include "tsdb/store.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/engine.hpp"

namespace tacc {
namespace {

std::string sample_chunk() {
  simhw::NodeConfig nc;
  nc.topology = simhw::Topology{1, 2, false};
  simhw::Node node(nc);
  collect::HostSampler sampler(node);
  auto log = sampler.make_log();
  log.records.push_back(sampler.sample(1451606400LL * util::kSecond, {1},
                                       "begin"));
  return log.serialize();
}

TEST(FuzzParse, RandomMutationsNeverCrash) {
  const std::string base = sample_chunk();
  util::Rng rng("fuzz.mutate", 99);
  int parsed = 0;
  int rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = base;
    const int mutations = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      switch (rng.uniform_int(0, 3)) {
        case 0:
          text[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:
          text.erase(pos, 1);
          break;
        case 2:
          text.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
          break;
        default:
          text[pos] = '\n';
          break;
      }
    }
    try {
      const auto log = collect::HostLog::parse(text);
      ++parsed;
      (void)log;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
    // Any other exception type (or a crash) fails the test.
  }
  EXPECT_EQ(parsed + rejected, 500);
  EXPECT_GT(rejected, 0);  // mutations do get caught
}

TEST(FuzzParse, RandomGarbageNeverCrashes) {
  util::Rng rng("fuzz.garbage", 7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int len = static_cast<int>(rng.uniform_int(0, 2000));
    for (int i = 0; i < len; ++i) {
      text += static_cast<char>(rng.uniform_int(1, 255));
    }
    try {
      (void)collect::HostLog::parse(text);
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();
}

TEST(FuzzParse, TruncationsNeverCrash) {
  const std::string base = sample_chunk();
  for (std::size_t cut = 0; cut < base.size(); cut += 7) {
    try {
      (void)collect::HostLog::parse(base.substr(0, cut));
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();
}

TEST(EngineProperty, CountersScaleLinearlyWithRuntime) {
  // Doubling a steady job's runtime doubles every cumulative counter
  // (within per-quantum rounding), because demand is stationary.
  auto run = [](util::SimTime runtime) {
    simhw::ClusterConfig cc;
    cc.num_nodes = 1;
    cc.topology = simhw::Topology{2, 4, false};
    simhw::Cluster cluster(cc);
    workload::Engine engine(cluster, 0);
    workload::JobSpec job;
    job.jobid = 1;
    job.profile = "md_engine";
    job.exe = "namd2";
    job.nodes = 1;
    job.wayness = 8;
    job.start_time = 0;
    job.end_time = runtime * 4;  // phase logic far away
    engine.start_job(job, {0});
    engine.advance(runtime);
    return cluster.node(0).state();
  };
  const auto one = run(util::kHour);
  const auto two = run(2 * util::kHour);
  EXPECT_NEAR(static_cast<double>(two.cores[0].instructions),
              2.0 * static_cast<double>(one.cores[0].instructions),
              0.02 * static_cast<double>(two.cores[0].instructions));
  EXPECT_NEAR(static_cast<double>(two.sockets[0].energy_pkg_uj),
              2.0 * static_cast<double>(one.sockets[0].energy_pkg_uj),
              0.02 * static_cast<double>(two.sockets[0].energy_pkg_uj));
  EXPECT_NEAR(static_cast<double>(two.ib.tx_bytes),
              2.0 * static_cast<double>(one.ib.tx_bytes),
              0.05 * static_cast<double>(two.ib.tx_bytes));
}

TEST(EngineProperty, AdvanceSlicingIsExactlyEquivalent) {
  // One advance(1h) == sixty advance(1m): the quantum integration makes
  // slicing invisible.
  auto run = [](int slices) {
    simhw::ClusterConfig cc;
    cc.num_nodes = 1;
    cc.topology = simhw::Topology{2, 4, false};
    simhw::Cluster cluster(cc);
    workload::Engine engine(cluster, 0);
    workload::JobSpec job;
    job.jobid = 9;
    job.profile = "genomics_io";
    job.exe = "blastn";
    job.nodes = 1;
    job.wayness = 8;
    job.start_time = 0;
    job.end_time = 4 * util::kHour;
    engine.start_job(job, {0});
    const util::SimTime step = util::kHour / slices;
    for (int i = 0; i < slices; ++i) engine.advance(step);
    return cluster.node(0).state();
  };
  const auto coarse = run(1);
  const auto fine = run(60);
  EXPECT_EQ(coarse.cores[0].instructions, fine.cores[0].instructions);
  EXPECT_EQ(coarse.lustre.mdc_reqs, fine.lustre.mdc_reqs);
  EXPECT_EQ(coarse.ib.tx_bytes, fine.ib.tx_bytes);
  EXPECT_EQ(coarse.sockets[0].energy_pkg_uj, fine.sockets[0].energy_pkg_uj);
}

TEST(TsdbProperty, GroupBySumsPartitionTheTotal) {
  // Sum over group-by groups == ungrouped sum, for any tag partition.
  util::Rng rng("tsdb.prop", 5);
  tsdb::Store store;
  for (int i = 0; i < 300; ++i) {
    store.put("m",
              {{"host", "h" + std::to_string(rng.uniform_int(0, 7))},
               {"user", "u" + std::to_string(rng.uniform_int(0, 3))}},
              rng.uniform_int(0, 9) * util::kMinute, rng.uniform(0.0, 10.0));
  }
  tsdb::Query total_q;
  total_q.metric = "m";
  total_q.aggregator = tsdb::Aggregator::Sum;
  total_q.downsample = util::kHour;
  const auto total = store.query(total_q);
  ASSERT_EQ(total.size(), 1u);

  for (const char* tag : {"host", "user"}) {
    tsdb::Query grouped = total_q;
    grouped.group_by = {tag};
    double sum = 0.0;
    for (const auto& series : store.query(grouped)) {
      for (const auto& p : series.points) sum += p.value;
    }
    double expected = 0.0;
    for (const auto& p : total[0].points) expected += p.value;
    EXPECT_NEAR(sum, expected, 1e-9) << tag;
  }
}

TEST(StatsProperty, MergeIsAssociativeAcrossRandomSplits) {
  util::Rng rng("stats.prop", 31);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(5.0, 3.0));
  util::RunningStat whole;
  for (const double x : xs) whole.add(x);
  for (int trial = 0; trial < 10; ++trial) {
    const auto cut1 = static_cast<std::size_t>(rng.uniform_int(0, 999));
    const auto cut2 = static_cast<std::size_t>(rng.uniform_int(0, 999));
    const auto lo = std::min(cut1, cut2);
    const auto hi = std::max(cut1, cut2);
    util::RunningStat a, b, c;
    for (std::size_t i = 0; i < lo; ++i) a.add(xs[i]);
    for (std::size_t i = lo; i < hi; ++i) b.add(xs[i]);
    for (std::size_t i = hi; i < xs.size(); ++i) c.add(xs[i]);
    a.merge(b);
    a.merge(c);
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-7);
  }
}

}  // namespace
}  // namespace tacc
