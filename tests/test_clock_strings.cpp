// Sim-time calendar math and string parsing helpers.
#include <gtest/gtest.h>

#include "util/clock.hpp"
#include "util/strings.hpp"

namespace tacc::util {
namespace {

TEST(Clock, EpochIsZero) {
  EXPECT_EQ(make_time(1970, 1, 1), 0);
}

TEST(Clock, KnownTimestamps) {
  // 2015-10-01 00:00:00 UTC = 1443657600 (paper's Q4 2015 start).
  EXPECT_EQ(make_time(2015, 10, 1) / kSecond, 1443657600);
  // 2016-01-01 00:00:00 UTC = 1451606400.
  EXPECT_EQ(make_time(2016, 1, 1) / kSecond, 1451606400);
}

TEST(Clock, LeapYearHandling) {
  // 2016 is a leap year: Feb 29 exists.
  EXPECT_EQ(make_time(2016, 3, 1) - make_time(2016, 2, 28), 2 * kDay);
  // 2015 is not.
  EXPECT_EQ(make_time(2015, 3, 1) - make_time(2015, 2, 28), kDay);
  // 2000 was a leap year (divisible by 400), 1900-style century rule.
  EXPECT_EQ(make_time(2000, 3, 1) - make_time(2000, 2, 28), 2 * kDay);
}

TEST(Clock, FormatRoundTrip) {
  const SimTime t = make_time(2016, 1, 14, 13, 45, 7);
  EXPECT_EQ(format_time(t), "2016-01-14 13:45:07");
}

TEST(Clock, FormatEpoch) {
  EXPECT_EQ(format_time(0), "1970-01-01 00:00:00");
}

TEST(Clock, SecondsConversions) {
  EXPECT_EQ(from_seconds(1.5), 1500000);
  EXPECT_DOUBLE_EQ(to_seconds(2500000), 2.5);
}

TEST(Clock, FormatDuration) {
  EXPECT_EQ(format_duration(850 * kMillisecond), "850ms");
  EXPECT_EQ(format_duration(12 * kSecond), "12.0s");
  EXPECT_EQ(format_duration(3 * kMinute + 5 * kSecond), "3m 05s");
  EXPECT_EQ(format_duration(2 * kHour + 13 * kMinute + 5 * kSecond),
            "2h 13m 05s");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsMergesRuns) {
  const auto parts = split_ws("  cpu0   100\t200  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "cpu0");
  EXPECT_EQ(parts[1], "100");
  EXPECT_EQ(parts[2], "200");
}

TEST(Strings, SplitWsEmpty) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t ").empty());
}

TEST(Strings, SplitLinesDropsTrailingEmpty) {
  const auto lines = split_lines("a\nb\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(split_lines("a\n\nb").size(), 3u);  // interior empties kept
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), ~0ULL);
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("1.5"));
}

TEST(Strings, ParseI64) {
  EXPECT_EQ(parse_i64("-42"), -42);
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_FALSE(parse_i64("4 2"));
}

TEST(Strings, ParseF64) {
  EXPECT_DOUBLE_EQ(*parse_f64("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*parse_f64("-3e2"), -300.0);
  EXPECT_FALSE(parse_f64("abc"));
  EXPECT_FALSE(parse_f64(""));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("cpu0", "cpu"));
  EXPECT_FALSE(starts_with("cp", "cpu"));
  EXPECT_TRUE(ends_with("a/status", "/status"));
  EXPECT_FALSE(ends_with("status", "/status"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KB");
  EXPECT_EQ(format_bytes(1.25 * 1024 * 1024 * 1024), "1.25 GB");
}

}  // namespace
}  // namespace tacc::util
