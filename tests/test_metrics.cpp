// Table I metric computation against hand-built job data with exactly known
// counter values: ARC (average-rate-of-change) semantics, Maximum-metric
// semantics, ratio-of-averages, wraparound correction, NaN propagation for
// absent devices, idle/catastrophe definitions.
#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/metrics.hpp"

namespace tacc::pipeline {
namespace {

constexpr util::SimTime kT0 = 1451606400LL * util::kSecond;
constexpr std::int64_t kDt = 600;  // seconds per interval

collect::Schema cpu_schema() {
  return collect::Schema("cpu", {{"user", true, 64, "jiffies", 1.0},
                                 {"nice", true, 64, "jiffies", 1.0},
                                 {"system", true, 64, "jiffies", 1.0},
                                 {"idle", true, 64, "jiffies", 1.0},
                                 {"iowait", true, 64, "jiffies", 1.0}});
}

collect::Schema pmc_schema() {
  return collect::Schema("hsw",
                         {{"instructions", true, 48, "", 1.0},
                          {"cycles", true, 48, "", 1.0},
                          {"fp_scalar", true, 48, "", 1.0},
                          {"fp_vector", true, 48, "", 1.0},
                          {"loads_all", true, 48, "", 1.0},
                          {"l1_hits", true, 48, "", 1.0}});
}

collect::Schema mdc_schema() {
  return collect::Schema("mdc", {{"reqs", true, 64, "reqs", 1.0},
                                 {"wait", true, 64, "usec", 1.0}});
}

collect::Schema rapl_schema() {
  return collect::Schema("rapl",
                         {{"energy_pkg", true, 32, "uJ", 1.0e6 / 65536.0},
                          {"energy_cores", true, 32, "uJ", 1.0e6 / 65536.0},
                          {"energy_dram", true, 32, "uJ", 1.0e6 / 65536.0}});
}

collect::Schema mem_schema() {
  return collect::Schema("mem", {{"MemTotal", false, 64, "KB", 1.0},
                                 {"MemFree", false, 64, "KB", 1.0},
                                 {"Cached", false, 64, "KB", 1.0},
                                 {"MemUsed", false, 64, "KB", 1.0}});
}

/// Builds a host with n records at 600 s spacing; `fill` appends blocks for
/// record index r.
HostSeries make_host(
    const std::string& name, std::vector<collect::Schema> schemas, int n,
    const std::function<void(int, collect::Record&)>& fill) {
  HostSeries h;
  h.hostname = name;
  h.arch = "hsw";
  h.schemas = std::move(schemas);
  for (int r = 0; r < n; ++r) {
    collect::Record rec;
    rec.time = kT0 + r * kDt * util::kSecond;
    rec.jobids = {1};
    fill(r, rec);
    h.records.push_back(std::move(rec));
  }
  return h;
}

JobData one_host_job(HostSeries host) {
  JobData data;
  data.acct.jobid = 1;
  data.acct.hostnames = {host.hostname};
  data.hosts.push_back(std::move(host));
  return data;
}

TEST(Metrics, EmptyJobIsAllNaN) {
  JobData data;
  const auto m = compute_metrics(data);
  EXPECT_TRUE(std::isnan(m.CPU_Usage));
  EXPECT_TRUE(std::isnan(m.MetaDataRate));
  EXPECT_TRUE(std::isnan(m.flops));
}

TEST(Metrics, SingleRecordIsAllNaN) {
  auto host = make_host("h", {cpu_schema()}, 1, [](int, collect::Record& r) {
    r.blocks.push_back({"cpu", "0", {1, 0, 0, 1, 0}});
  });
  const auto m = compute_metrics(one_host_job(std::move(host)));
  EXPECT_TRUE(std::isnan(m.CPU_Usage));
}

TEST(Metrics, CpuUsageFromJiffies) {
  // 2 cpus, 3 records; user fraction exactly 0.75 on cpu0, 0.25 on cpu1.
  auto host = make_host("h", {cpu_schema()}, 3, [](int r, collect::Record& rec) {
    const std::uint64_t t = static_cast<std::uint64_t>(r) * kDt * 100;
    rec.blocks.push_back({"cpu", "0", {t * 3 / 4, 0, 0, t / 4, 0}});
    rec.blocks.push_back({"cpu", "1", {t / 4, 0, 0, t * 3 / 4, 0}});
  });
  const auto m = compute_metrics(one_host_job(std::move(host)));
  EXPECT_NEAR(m.CPU_Usage, 0.5, 1e-9);  // device-summed user / total
  EXPECT_NEAR(m.catastrophe, 1.0, 1e-9);  // perfectly steady over time
  EXPECT_NEAR(m.idle, 1.0, 1e-9);         // single host: min == max
}

TEST(Metrics, IdleIsMinOverMaxAcrossNodes) {
  auto busy = make_host("h1", {cpu_schema()}, 3, [](int r, collect::Record& rec) {
    const std::uint64_t t = static_cast<std::uint64_t>(r) * kDt * 100;
    rec.blocks.push_back({"cpu", "0", {t * 9 / 10, 0, 0, t / 10, 0}});
  });
  auto lazy = make_host("h2", {cpu_schema()}, 3, [](int r, collect::Record& rec) {
    const std::uint64_t t = static_cast<std::uint64_t>(r) * kDt * 100;
    rec.blocks.push_back({"cpu", "0", {t * 3 / 10, 0, 0, t * 7 / 10, 0}});
  });
  JobData data;
  data.acct.jobid = 1;
  data.hosts = {std::move(busy), std::move(lazy)};
  const auto m = compute_metrics(data);
  EXPECT_NEAR(m.CPU_Usage, 0.6, 1e-6);      // mean(0.9, 0.3)
  EXPECT_NEAR(m.idle, 0.3 / 0.9, 1e-6);     // min/max over nodes
}

TEST(Metrics, CatastropheDetectsTemporalDrop) {
  // First interval busy, second interval dead.
  auto host = make_host("h", {cpu_schema()}, 3, [](int r, collect::Record& rec) {
    // user accumulates only during the first interval.
    const std::uint64_t user = r >= 1 ? 54000 : 0;  // 0.9 * 600 * 100
    const std::uint64_t total = static_cast<std::uint64_t>(r) * kDt * 100;
    rec.blocks.push_back(
        {"cpu", "0", {user, 0, 0, total - user, 0}});
  });
  const auto m = compute_metrics(one_host_job(std::move(host)));
  EXPECT_NEAR(m.catastrophe, 0.0, 1e-9);  // min window 0 / max window 0.9
}

TEST(Metrics, CpiCpldFlopsVecFromPmc) {
  // One cpu: per interval: 1e12 instructions, 2e12 cycles, 1e10 scalar,
  // 3e10 vector FP, 4e11 loads.
  auto host = make_host(
      "h", {pmc_schema()}, 3, [](int r, collect::Record& rec) {
        const auto k = static_cast<std::uint64_t>(r);
        rec.blocks.push_back({"hsw", "0",
                              {k * 1000000000000ULL, k * 2000000000000ULL,
                               k * 10000000000ULL, k * 30000000000ULL,
                               k * 400000000000ULL, k * 380000000000ULL}});
      });
  const auto m = compute_metrics(one_host_job(std::move(host)));
  EXPECT_NEAR(m.cpi, 2.0, 1e-9);
  EXPECT_NEAR(m.cpld, 5.0, 1e-9);  // 2e12 / 4e11
  // hsw vector width = 4 doubles: flops = (1e10 + 4*3e10)/600 s / 1e9.
  EXPECT_NEAR(m.flops, (1e10 + 4 * 3e10) / 600.0 / 1e9, 1e-6);
  EXPECT_NEAR(m.VecPercent, 3.0 / 4.0, 1e-9);  // 3e10 / 4e10
  EXPECT_NEAR(m.Load_All, 4e11 / 600.0, 1e-3);
  EXPECT_NEAR(m.Load_L1Hits, 3.8e11 / 600.0, 1e-3);
  EXPECT_TRUE(std::isnan(m.Load_L2Hits));  // not in the 4-PMC schema
}

TEST(Metrics, PerCoreNormalizationDividesByDevices) {
  // Two cpus with identical counts: per-core load rate must not double.
  auto host = make_host(
      "h", {pmc_schema()}, 2, [](int r, collect::Record& rec) {
        const auto k = static_cast<std::uint64_t>(r);
        for (const char* dev : {"0", "1"}) {
          rec.blocks.push_back({"hsw", dev,
                                {k * 600, k * 1200, 0, 0,
                                 k * 600000, k * 540000}});
        }
      });
  const auto m = compute_metrics(one_host_job(std::move(host)));
  EXPECT_NEAR(m.Load_All, 1000.0, 1e-6);  // 600000/600 per core
  EXPECT_NEAR(m.cpi, 2.0, 1e-9);          // ratio unaffected by summation
}

TEST(Metrics, AverageIsRatioOfTotalsNotIntervalMean) {
  // Uneven intervals: 90% of requests land in the first interval. The ARC
  // must equal total/elapsed, not the mean of per-interval rates.
  auto host = make_host("h", {mdc_schema()}, 3, [](int r, collect::Record& rec) {
    const std::uint64_t reqs = r == 0 ? 0 : (r == 1 ? 9000 : 10000);
    rec.blocks.push_back({"mdc", "t", {reqs, reqs * 100}});
  });
  const auto m = compute_metrics(one_host_job(std::move(host)));
  EXPECT_NEAR(m.MDCReqs, 10000.0 / 1200.0, 1e-9);
  EXPECT_NEAR(m.MDCWait, 100.0, 1e-9);  // wait per request
  // Maximum metric: the hot interval's rate.
  EXPECT_NEAR(m.MetaDataRate, 9000.0 / 600.0, 1e-9);
  EXPECT_GE(m.MetaDataRate, m.MDCReqs);
}

TEST(Metrics, MaxMetricSumsAcrossNodesPerInterval) {
  auto mk = [&](const char* name, std::uint64_t per_interval) {
    return make_host(name, {mdc_schema()}, 3,
                     [per_interval](int r, collect::Record& rec) {
                       const auto k = static_cast<std::uint64_t>(r);
                       rec.blocks.push_back(
                           {"mdc", "t",
                            {k * per_interval, k * per_interval * 10}});
                     });
  };
  JobData data;
  data.acct.jobid = 1;
  data.hosts = {mk("h1", 6000), mk("h2", 12000)};
  const auto m = compute_metrics(data);
  // Average: mean over nodes of per-node rates.
  EXPECT_NEAR(m.MDCReqs, (10.0 + 20.0) / 2.0, 1e-9);
  // Maximum: summed over nodes.
  EXPECT_NEAR(m.MetaDataRate, 30.0, 1e-9);
}

TEST(Metrics, RaplWrapCorrectionAndScaling) {
  // 32-bit register wraps between records; truth is +2^31 units twice.
  auto host = make_host(
      "h", {rapl_schema()}, 3, [](int r, collect::Record& rec) {
        const std::uint64_t reg =
            (static_cast<std::uint64_t>(r) * 0x80000000ULL) & 0xFFFFFFFFULL;
        rec.blocks.push_back({"rapl", "0", {reg, reg / 2, reg / 4}});
      });
  const auto m = compute_metrics(one_host_job(std::move(host)));
  // Total = 2 * 2^31 units * (1e6/65536) uJ / 1200 s / 1e6 -> Watts.
  const double expected_w =
      2.0 * 2147483648.0 * (1.0e6 / 65536.0) / 1200.0 / 1e6;
  EXPECT_NEAR(m.PkgWatts, expected_w, expected_w * 1e-6);
  EXPECT_NEAR(m.CoreWatts, expected_w / 2.0, expected_w);
}

TEST(Metrics, MemUsageIsMaxSnapshot) {
  auto host = make_host("h", {mem_schema()}, 3, [](int r, collect::Record& rec) {
    const std::uint64_t used =
        r == 1 ? 8ULL * 1024 * 1024 : 2ULL * 1024 * 1024;
    rec.blocks.push_back(
        {"mem", "", {32ULL * 1024 * 1024, 0, 0, used}});
  });
  const auto m = compute_metrics(one_host_job(std::move(host)));
  EXPECT_NEAR(m.MemUsage, 8.0, 1e-9);  // GB, max over snapshots
}

TEST(Metrics, InternodeIbSubtractsLnetAndClamps) {
  collect::Schema ib("ib", {{"port_rcv_data", true, 64, "bytes", 4.0},
                            {"port_xmit_data", true, 64, "bytes", 4.0},
                            {"port_rcv_pkts", true, 64, "packets", 1.0},
                            {"port_xmit_pkts", true, 64, "packets", 1.0}});
  collect::Schema lnet("lnet", {{"tx_msgs", true, 64, "msgs", 1.0},
                                {"rx_msgs", true, 64, "msgs", 1.0},
                                {"tx_bytes", true, 64, "bytes", 1.0},
                                {"rx_bytes", true, 64, "bytes", 1.0}});
  auto host = make_host(
      "h", {ib, lnet}, 3, [](int r, collect::Record& rec) {
        const auto k = static_cast<std::uint64_t>(r);
        // IB: 40 MB per interval per direction in 4-byte words.
        rec.blocks.push_back(
            {"ib", "mlx4_0",
             {k * 10000000, k * 10000000, k * 20000, k * 20000}});
        // LNET: 30 MB per interval per direction.
        rec.blocks.push_back(
            {"lnet", "", {k * 1000, k * 1000, k * 30000000, k * 30000000}});
      });
  const auto m = compute_metrics(one_host_job(std::move(host)));
  // IB bytes = 2 * 40 MB, LNET = 2 * 30 MB -> MPI = 20 MB per 600 s.
  EXPECT_NEAR(m.InternodeIBAveBW, 20e6 / 600.0 / 1e6, 1e-6);
  // Totals over the job: 40M words * 4 B = 160 MB carried by 80k packets
  // (both directions counted) -> 2 kB average packets at 66.7 packets/s.
  EXPECT_NEAR(m.Packetsize,
              (2.0 * 10e6 + 2.0 * 10e6) * 4.0 / (2.0 * 20000 + 2.0 * 20000),
              1e-6);
  EXPECT_NEAR(m.Packetrate, (2.0 * 20000 + 2.0 * 20000) / 1200.0, 1e-6);
}

TEST(Metrics, InternodeIbClampsToZeroWhenLnetDominates) {
  collect::Schema ib("ib", {{"port_rcv_data", true, 64, "bytes", 4.0},
                            {"port_xmit_data", true, 64, "bytes", 4.0},
                            {"port_rcv_pkts", true, 64, "packets", 1.0},
                            {"port_xmit_pkts", true, 64, "packets", 1.0}});
  collect::Schema lnet("lnet", {{"tx_msgs", true, 64, "msgs", 1.0},
                                {"rx_msgs", true, 64, "msgs", 1.0},
                                {"tx_bytes", true, 64, "bytes", 1.0},
                                {"rx_bytes", true, 64, "bytes", 1.0}});
  auto host = make_host(
      "h", {ib, lnet}, 2, [](int r, collect::Record& rec) {
        const auto k = static_cast<std::uint64_t>(r);
        rec.blocks.push_back({"ib", "x", {k * 1000, k * 1000, k, k}});
        // LNET reports more than the IB port (e.g. router asymmetry).
        rec.blocks.push_back({"lnet", "", {0, 0, k * 9000000, k * 9000000}});
      });
  const auto m = compute_metrics(one_host_job(std::move(host)));
  EXPECT_DOUBLE_EQ(m.InternodeIBAveBW, 0.0);
}

TEST(Metrics, MissingDevicesAreNaN) {
  auto host = make_host("h", {cpu_schema()}, 3, [](int r, collect::Record& rec) {
    const std::uint64_t t = static_cast<std::uint64_t>(r) * kDt * 100;
    rec.blocks.push_back({"cpu", "0", {t / 2, 0, 0, t / 2, 0}});
  });
  const auto m = compute_metrics(one_host_job(std::move(host)));
  EXPECT_FALSE(std::isnan(m.CPU_Usage));
  EXPECT_TRUE(std::isnan(m.MetaDataRate));
  EXPECT_TRUE(std::isnan(m.flops));
  EXPECT_TRUE(std::isnan(m.GigEBW));
  EXPECT_TRUE(std::isnan(m.MIC_Usage));
  EXPECT_TRUE(std::isnan(m.PkgWatts));
  EXPECT_TRUE(std::isnan(m.MemUsage));
}

TEST(Metrics, LabelsMatchMapKeys) {
  const JobMetrics m;
  const auto map = m.as_map();
  EXPECT_EQ(map.size(), JobMetrics::labels().size());
  for (const auto& label : JobMetrics::labels()) {
    EXPECT_TRUE(map.count(label)) << label;
  }
}

TEST(Timeseries, PanelsMatchHandComputedValues) {
  auto host = make_host(
      "h", {cpu_schema(), pmc_schema()}, 3, [](int r, collect::Record& rec) {
        const std::uint64_t t = static_cast<std::uint64_t>(r) * kDt * 100;
        rec.blocks.push_back({"cpu", "0", {t * 4 / 5, 0, 0, t / 5, 0}});
        const auto k = static_cast<std::uint64_t>(r);
        rec.blocks.push_back({"hsw", "0",
                              {k * 100, k * 200, k * 6000000000ULL,
                               k * 6000000000ULL, k * 10, k * 10}});
      });
  const auto series = job_timeseries(one_host_job(std::move(host)));
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].times.size(), 2u);
  EXPECT_NEAR(series[0].cpu_user[0], 0.8, 1e-9);
  // flops = (6e9 + 4*6e9)/600 / 1e9 = 0.05 GF/s.
  EXPECT_NEAR(series[0].gflops[0], 0.05, 1e-9);
  EXPECT_EQ(series[0].hostname, "h");
}

}  // namespace
}  // namespace tacc::pipeline
