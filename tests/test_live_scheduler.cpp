// Live FCFS scheduler driving the monitored cluster: allocation, queueing,
// prolog/epilog integration, strict FCFS ordering.
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "pipeline/ingest.hpp"
#include "portal/report.hpp"
#include "util/rng.hpp"

namespace tacc::core {
namespace {

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;

struct World {
  simhw::Cluster cluster;
  ClusterMonitor monitor;
  LiveScheduler scheduler;

  explicit World(int nodes)
      : cluster([&] {
          simhw::ClusterConfig cc;
          cc.num_nodes = nodes;
          cc.topology = simhw::Topology{1, 4, false};
          cc.phi_fraction = 0.0;
          return cc;
        }()),
        monitor(cluster,
                [] {
                  MonitorConfig mc;
                  mc.start = kStart;
                  mc.online_analysis = false;
                  return mc;
                }()),
        scheduler(monitor, static_cast<std::size_t>(nodes)) {}
};

workload::JobSpec job(long id, int nodes, util::SimTime submit,
                      util::SimTime duration) {
  workload::JobSpec j;
  j.jobid = id;
  j.user = "u";
  j.profile = "mc_scalar";
  j.exe = "mcrun";
  j.nodes = nodes;
  j.wayness = 4;
  j.submit_time = submit;
  j.start_time = submit;
  j.end_time = submit + duration;
  return j;
}

TEST(LiveScheduler, RunsJobImmediatelyWhenNodesFree) {
  World w(4);
  w.scheduler.submit(job(1, 2, kStart, util::kHour));
  w.scheduler.run_until(kStart + 10 * util::kMinute);
  EXPECT_EQ(w.scheduler.running(), 1u);
  EXPECT_EQ(w.scheduler.free_nodes(), 2u);
  w.scheduler.run_until(kStart + 2 * util::kHour);
  EXPECT_EQ(w.scheduler.running(), 0u);
  ASSERT_EQ(w.scheduler.completed().size(), 1u);
  EXPECT_EQ(w.scheduler.completed()[0].start_time, kStart);
  EXPECT_EQ(w.scheduler.free_nodes(), 4u);
}

TEST(LiveScheduler, QueuesWhenFull) {
  World w(4);
  w.scheduler.submit(job(1, 4, kStart, 2 * util::kHour));
  w.scheduler.submit(job(2, 2, kStart + util::kMinute, util::kHour));
  w.scheduler.run_until(kStart + util::kHour);
  EXPECT_EQ(w.scheduler.running(), 1u);
  EXPECT_EQ(w.scheduler.waiting(), 1u);
  // Job 2 starts when job 1 releases its nodes.
  w.scheduler.run_until(kStart + 2 * util::kHour + util::kMinute);
  EXPECT_EQ(w.scheduler.running(), 1u);
  EXPECT_EQ(w.scheduler.waiting(), 0u);
  w.scheduler.drain_jobs();
  ASSERT_EQ(w.scheduler.completed().size(), 2u);
  const auto& j2 = w.scheduler.completed()[1];
  EXPECT_EQ(j2.jobid, 2);
  EXPECT_GE(j2.start_time, kStart + 2 * util::kHour);
  EXPECT_GT(j2.queue_wait(), 0);
}

TEST(LiveScheduler, StrictFcfsHeadBlocks) {
  World w(4);
  w.scheduler.submit(job(1, 3, kStart, 2 * util::kHour));
  w.scheduler.submit(job(2, 4, kStart + util::kMinute, util::kHour));
  // Job 3 would fit in the single free node but must wait behind job 2.
  w.scheduler.submit(job(3, 1, kStart + 2 * util::kMinute, util::kHour));
  w.scheduler.run_until(kStart + util::kHour);
  EXPECT_EQ(w.scheduler.running(), 1u);
  EXPECT_EQ(w.scheduler.waiting(), 2u);
}

TEST(LiveScheduler, PrologEpilogMarksArriveInArchive) {
  World w(2);
  w.scheduler.submit(job(5, 2, kStart, util::kHour));
  w.scheduler.drain_jobs();
  w.monitor.drain();
  const auto log = w.monitor.archive().log("c400-001");
  ASSERT_FALSE(log.records.empty());
  EXPECT_EQ(log.records.front().mark, "begin");
  bool saw_end = false;
  for (const auto& rec : log.records) saw_end |= rec.mark == "end";
  EXPECT_TRUE(saw_end);
}

TEST(LiveScheduler, ManyJobsAllComplete) {
  World w(8);
  util::Rng rng("sched.test", 3);
  for (long i = 0; i < 24; ++i) {
    w.scheduler.submit(job(100 + i, 1 + static_cast<int>(i % 4),
                           kStart + i * 7 * util::kMinute,
                           util::from_seconds(rng.uniform(1800, 7200))));
  }
  w.scheduler.drain_jobs();
  EXPECT_EQ(w.scheduler.completed().size(), 24u);
  EXPECT_EQ(w.scheduler.free_nodes(), 8u);
  // Accounting is consistent: starts never precede submits.
  for (const auto& j : w.scheduler.completed()) {
    EXPECT_GE(j.start_time, j.submit_time);
    EXPECT_GT(j.end_time, j.start_time);
  }
}

TEST(LiveScheduler, EndToEndMetricsFromScheduledJobs) {
  World w(4);
  auto j = job(9, 2, kStart, util::kHour);
  j.profile = "wrf";
  j.exe = "wrf.exe";
  w.scheduler.submit(j);
  w.scheduler.drain_jobs();
  w.monitor.drain();
  db::Database database;
  const auto& done = w.scheduler.completed();
  ASSERT_EQ(done.size(), 1u);
  std::vector<workload::AccountingRecord> acct = {
      workload::to_accounting(done[0], {"c400-001", "c400-002"})};
  EXPECT_EQ(pipeline::ingest_from_archive(database, w.monitor.archive(),
                                          acct),
            1u);
  const auto& jobs = database.table(pipeline::kJobsTable);
  EXPECT_GT(jobs.at(0, "CPU_Usage").as_real(), 0.5);
}

TEST(PortalReports, AppAndUserAggregation) {
  db::Database database;
  auto& jobs = pipeline::create_jobs_table(database);
  auto add = [&](long id, const char* user, const char* exe, int nodes,
                 double hours, double cpu) {
    workload::AccountingRecord a;
    a.jobid = id;
    a.user = user;
    a.exe = exe;
    a.queue = "normal";
    a.status = "COMPLETED";
    a.nodes = nodes;
    a.start_time = 0;
    a.end_time = util::from_seconds(hours * 3600.0);
    pipeline::JobMetrics m;
    m.CPU_Usage = cpu;
    m.flops = 10.0;
    m.VecPercent = 0.5;
    m.MetaDataRate = 100.0;
    pipeline::ingest_job(jobs, a, m, {});
  };
  add(1, "alice", "wrf.exe", 4, 2.0, 0.8);   // 8 node-hours
  add(2, "alice", "wrf.exe", 2, 1.0, 0.7);   // 2 node-hours
  add(3, "bob", "namd2", 8, 3.0, 0.9);       // 24 node-hours
  const auto rows = jobs.select({});
  const auto apps = portal::app_report(jobs, rows);
  // namd2 leads by node-hours.
  EXPECT_LT(apps.find("namd2"), apps.find("wrf.exe"));
  EXPECT_NE(apps.find("10"), std::string::npos);  // node hours column
  const auto users = portal::user_report(jobs, rows);
  EXPECT_LT(users.find("bob"), users.find("alice"));
}

}  // namespace
}  // namespace tacc::core
