// Architecture catalog: CPUID resolution, per-arch event encodings,
// topology math.
#include <gtest/gtest.h>

#include <set>

#include "simhw/arch.hpp"
#include "simhw/topology.hpp"

namespace tacc::simhw {
namespace {

class ArchSweep : public ::testing::TestWithParam<Microarch> {};

TEST_P(ArchSweep, SpecIsSelfConsistent) {
  const auto& spec = arch_spec(GetParam());
  EXPECT_EQ(spec.uarch, GetParam());
  EXPECT_FALSE(spec.codename.empty());
  EXPECT_FALSE(spec.model_name.empty());
  EXPECT_EQ(spec.cpuid_family, 6);
  EXPECT_GT(spec.cpuid_model, 0);
  EXPECT_GT(spec.nominal_ghz, 1.0);
  EXPECT_TRUE(spec.vector_width_doubles == 2 || spec.vector_width_doubles == 4);
  EXPECT_EQ(spec.pmc_events.size(), 8u);  // fills the HT-off budget
}

TEST_P(ArchSweep, CpuidRoundTrip) {
  const auto& spec = arch_spec(GetParam());
  const ArchSpec* found = arch_from_cpuid(spec.cpuid_family, spec.cpuid_model);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->uarch, GetParam());
}

TEST_P(ArchSweep, EncodingsAreDistinctWithinArch) {
  const auto& spec = arch_spec(GetParam());
  std::set<std::pair<int, int>> seen;
  for (const auto& e : spec.pmc_events) {
    EXPECT_TRUE(seen.emplace(e.event_select, e.umask).second)
        << "duplicate encoding in " << spec.codename;
  }
}

TEST_P(ArchSweep, FirstFourEventsCoverTheHtBudget) {
  // With hyperthreading only 4 counters exist; the first four events must
  // include the FP and load counters the core metrics need.
  const auto& spec = arch_spec(GetParam());
  std::set<CoreEvent> first4;
  for (int i = 0; i < 4; ++i) first4.insert(spec.pmc_events[i].event);
  EXPECT_TRUE(first4.count(CoreEvent::FpScalar));
  EXPECT_TRUE(first4.count(CoreEvent::FpVector));
  EXPECT_TRUE(first4.count(CoreEvent::LoadsAll));
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, ArchSweep, ::testing::ValuesIn(all_microarchs()),
    [](const ::testing::TestParamInfo<Microarch>& info) {
      return std::string(to_string(info.param));
    });

TEST(Arch, UnknownCpuidIsNull) {
  EXPECT_EQ(arch_from_cpuid(6, 999), nullptr);
  EXPECT_EQ(arch_from_cpuid(15, 26), nullptr);
}

TEST(Arch, VectorWidthsMatchIsaGenerations) {
  EXPECT_EQ(arch_spec(Microarch::Nehalem).vector_width_doubles, 2);   // SSE
  EXPECT_EQ(arch_spec(Microarch::Westmere).vector_width_doubles, 2);  // SSE
  EXPECT_EQ(arch_spec(Microarch::SandyBridge).vector_width_doubles, 4);
  EXPECT_EQ(arch_spec(Microarch::Haswell).vector_width_doubles, 4);
}

TEST(Arch, UncoreAccessMethodPerGeneration) {
  EXPECT_FALSE(arch_spec(Microarch::Nehalem).uncore_in_pci);
  EXPECT_FALSE(arch_spec(Microarch::Westmere).uncore_in_pci);
  EXPECT_TRUE(arch_spec(Microarch::SandyBridge).uncore_in_pci);
  EXPECT_TRUE(arch_spec(Microarch::IvyBridge).uncore_in_pci);
  EXPECT_TRUE(arch_spec(Microarch::Haswell).uncore_in_pci);
}

TEST(Arch, EncodingsDifferAcrossGenerations) {
  // NHM and SNB use different load-event encodings; programming the NHM
  // table on SNB must not match.
  const auto& nhm = arch_spec(Microarch::Nehalem);
  const auto& snb = arch_spec(Microarch::SandyBridge);
  auto find = [](const ArchSpec& s, CoreEvent e) {
    for (const auto& enc : s.pmc_events) {
      if (enc.event == e) return std::make_pair(enc.event_select, enc.umask);
    }
    return std::make_pair<std::uint8_t, std::uint8_t>(0, 0);
  };
  EXPECT_NE(find(nhm, CoreEvent::LoadsAll), find(snb, CoreEvent::LoadsAll));
  EXPECT_NE(find(nhm, CoreEvent::FpScalar), find(snb, CoreEvent::FpScalar));
}

TEST(Topology, LogicalCpuCounts) {
  Topology t{2, 8, false};
  EXPECT_EQ(t.physical_cores(), 16);
  EXPECT_EQ(t.logical_cpus(), 16);
  t.hyperthreading = true;
  EXPECT_EQ(t.logical_cpus(), 32);
}

TEST(Topology, SocketOfCpuLayout) {
  const Topology t{2, 8, true};
  EXPECT_EQ(t.socket_of_cpu(0), 0);
  EXPECT_EQ(t.socket_of_cpu(7), 0);
  EXPECT_EQ(t.socket_of_cpu(8), 1);
  EXPECT_EQ(t.socket_of_cpu(15), 1);
  // Hyperthread siblings map back to the same socket.
  EXPECT_EQ(t.socket_of_cpu(16), 0);
  EXPECT_EQ(t.socket_of_cpu(24), 1);
  EXPECT_EQ(t.core_of_cpu(16), 0);
  EXPECT_EQ(t.core_of_cpu(31), 15);
}

TEST(Topology, PmcBudget) {
  Topology t{2, 8, false};
  EXPECT_EQ(t.pmcs_per_core(), 8);
  t.hyperthreading = true;
  EXPECT_EQ(t.pmcs_per_core(), 4);
}

}  // namespace
}  // namespace tacc::simhw
