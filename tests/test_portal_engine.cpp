// Portal serving layer: cache identity, epoch invalidation, deadlines,
// admission control / shed accounting, and worker-count determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "pipeline/ingest.hpp"
#include "portal/engine.hpp"
#include "portal/search.hpp"
#include "portal/views.hpp"
#include "tsdb/store.hpp"

namespace tacc::portal {
namespace {

using pipeline::JobMetrics;

db::Table& populated_jobs(db::Database& database) {
  auto& jobs = pipeline::create_jobs_table(database);
  auto insert = [&](long id, const char* user, const char* exe,
                    const char* queue, double cpu, double mdr,
                    util::SimTime start, double runtime_s,
                    const std::vector<pipeline::Flag>& flags = {}) {
    workload::AccountingRecord a;
    a.jobid = id;
    a.user = user;
    a.exe = exe;
    a.jobname = "run";
    a.queue = queue;
    a.status = "COMPLETED";
    a.nodes = 4;
    a.wayness = 16;
    a.submit_time = start - util::kMinute;
    a.start_time = start;
    a.end_time = start + util::from_seconds(runtime_s);
    JobMetrics m;
    m.CPU_Usage = cpu;
    m.MetaDataRate = mdr;
    m.MemUsage = 5.0;
    pipeline::ingest_job(jobs, a, m, flags);
  };
  const auto day = util::make_time(2016, 1, 4);
  insert(1, "alice", "wrf.exe", "normal", 0.8, 1000.0, day, 7200);
  insert(2, "bob", "wrf.exe", "normal", 0.6, 600000.0,
         day + 2 * util::kHour, 3600, {{"high_metadata_rate", "storm"}});
  insert(3, "alice", "namd2", "normal", 0.9, 100.0, day + util::kDay, 600);
  insert(4, "carol", "R", "largemem", 0.5, 50.0, day, 5400);
  return jobs;
}

QueryRequest search_request(const char* user = nullptr) {
  QueryRequest r;
  r.kind = QueryRequest::Kind::Search;
  if (user != nullptr) r.query.user = user;
  return r;
}

QueryRequest histogram_request() {
  QueryRequest r;
  r.kind = QueryRequest::Kind::Histograms;
  return r;
}

TEST(EngineCache, HitIsByteIdenticalAndFlagged) {
  db::Database database;
  auto& jobs = populated_jobs(database);
  QueryEngine engine(jobs);

  const auto cold = engine.execute(search_request("alice"));
  ASSERT_EQ(cold.status, QueryStatus::Ok);
  EXPECT_FALSE(cold.cached);

  const auto warm = engine.execute(search_request("alice"));
  ASSERT_EQ(warm.status, QueryStatus::Ok);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.payload, cold.payload);

  // And both match the direct (engine-free) rendering.
  PortalQuery q;
  q.user = "alice";
  EXPECT_EQ(cold.payload, job_list_view(jobs, run_query(jobs, q), 25));

  const auto s = engine.stats();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(EngineCache, DisabledCacheStillCorrect) {
  db::Database database;
  auto& jobs = populated_jobs(database);
  QueryEngineOptions opt;
  opt.cache_entries = 0;
  QueryEngine cached(jobs);
  QueryEngine uncached(jobs, nullptr, opt);

  for (const auto& req : {search_request(), search_request("alice"),
                          histogram_request()}) {
    const auto a = cached.execute(req);
    const auto b = uncached.execute(req);
    ASSERT_EQ(a.status, QueryStatus::Ok);
    ASSERT_EQ(b.status, QueryStatus::Ok);
    EXPECT_EQ(a.payload, b.payload);
    EXPECT_FALSE(b.cached);
  }
  EXPECT_EQ(uncached.stats().cache_hits, 0u);
}

TEST(EngineCache, HistogramsMatchDirectRendering) {
  db::Database database;
  auto& jobs = populated_jobs(database);
  QueryEngine engine(jobs);

  const auto cold = engine.execute(histogram_request());
  ASSERT_EQ(cold.status, QueryStatus::Ok);
  EXPECT_EQ(cold.payload,
            query_histograms(jobs, run_query(jobs, PortalQuery{}), 12));

  const auto warm = engine.execute(histogram_request());
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.payload, cold.payload);
  EXPECT_EQ(engine.stats().summary_rebuilds, 1u);
}

TEST(EngineCache, LruEvictsAtCapacity) {
  db::Database database;
  auto& jobs = populated_jobs(database);
  QueryEngineOptions opt;
  opt.cache_entries = 1;
  QueryEngine engine(jobs, nullptr, opt);

  ASSERT_EQ(engine.execute(search_request("alice")).status, QueryStatus::Ok);
  ASSERT_EQ(engine.execute(search_request("bob")).status, QueryStatus::Ok);
  // alice was evicted by bob; re-running alice is a miss again.
  EXPECT_FALSE(engine.execute(search_request("alice")).cached);
  EXPECT_GE(engine.stats().cache_evictions, 2u);
}

TEST(EngineEpochTest, StoreIngestInvalidatesExactly) {
  db::Database database;
  auto& jobs = populated_jobs(database);
  tsdb::Store store;
  QueryEngine engine(jobs, &store);

  QueryRequest req;
  req.kind = QueryRequest::Kind::Timeseries;
  req.ts.metric = "llite.open";
  req.ts.group_by = {"host"};

  const auto e0 = engine.current_epoch();
  ASSERT_EQ(engine.execute(req).status, QueryStatus::Ok);
  EXPECT_TRUE(engine.execute(req).cached);  // no ingest: still valid

  const std::vector<tsdb::DataPoint> pts = {{0, 1.0}, {10, 2.0}};
  store.put_batch("llite.open", {{"host", "c401-001"}}, pts);
  const auto e1 = engine.current_epoch();
  EXPECT_NE(e0, e1);
  EXPECT_EQ(e1.store, e0.store + 1);

  const auto fresh = engine.execute(req);
  ASSERT_EQ(fresh.status, QueryStatus::Ok);
  EXPECT_FALSE(fresh.cached);  // epoch moved: entry was stale
  EXPECT_NE(fresh.payload.find("c401-001"), std::string::npos);

  // seal_all also bumps; a query that saw raw points must not serve the
  // pre-seal bytes from cache.
  store.seal_all();
  EXPECT_FALSE(engine.execute(req).cached);
  // No further ingest: now it caches again.
  EXPECT_TRUE(engine.execute(req).cached);
}

TEST(EngineEpochTest, JobsRowCountAndManualBumpInvalidate) {
  db::Database database;
  auto& jobs = populated_jobs(database);
  QueryEngine engine(jobs);

  ASSERT_EQ(engine.execute(search_request()).status, QueryStatus::Ok);
  EXPECT_TRUE(engine.execute(search_request()).cached);

  engine.invalidate_jobs();
  EXPECT_FALSE(engine.execute(search_request()).cached);
  EXPECT_TRUE(engine.execute(search_request()).cached);

  // Appending a job changes the row count — no manual bump needed.
  workload::AccountingRecord a;
  a.jobid = 99;
  a.user = "dave";
  a.exe = "vasp";
  a.queue = "normal";
  a.status = "COMPLETED";
  a.nodes = 2;
  a.wayness = 16;
  a.start_time = util::make_time(2016, 1, 5);
  a.end_time = a.start_time + util::kHour;
  a.submit_time = a.start_time - util::kMinute;
  pipeline::ingest_job(jobs, a, JobMetrics{}, {});

  const auto fresh = engine.execute(search_request());
  EXPECT_FALSE(fresh.cached);
  EXPECT_NE(fresh.payload.find("dave"), std::string::npos);
}

TEST(EngineDeadline, ExpiredDeadlineIsCleanTimeout) {
  db::Database database;
  auto& jobs = populated_jobs(database);
  QueryEngine engine(jobs);

  auto req = search_request();
  req.deadline_ns = 0;  // expires at the first cooperative check
  const auto r = engine.execute(req);
  EXPECT_EQ(r.status, QueryStatus::TimedOut);
  EXPECT_TRUE(r.payload.empty());  // never partial
  EXPECT_FALSE(r.cached);

  const auto s = engine.stats();
  EXPECT_EQ(s.timed_out, 1u);
  EXPECT_EQ(s.completed, 0u);

  // A timed-out attempt must not poison the cache.
  req.deadline_ns = -1;
  const auto ok = engine.execute(req);
  EXPECT_EQ(ok.status, QueryStatus::Ok);
  EXPECT_FALSE(ok.cached);
  EXPECT_FALSE(ok.payload.empty());
}

TEST(EngineDeadline, DefaultDeadlineFromOptions) {
  db::Database database;
  auto& jobs = populated_jobs(database);
  QueryEngineOptions opt;
  opt.default_deadline_ns = 1;  // effectively immediate
  QueryEngine engine(jobs, nullptr, opt);
  EXPECT_EQ(engine.execute(search_request()).status, QueryStatus::TimedOut);

  // An explicit generous per-request budget overrides the default.
  auto req = search_request();
  req.deadline_ns = std::int64_t{60} * 1'000'000'000;
  EXPECT_EQ(engine.execute(req).status, QueryStatus::Ok);
}

TEST(EngineErrors, UnknownJobAndMissingStore) {
  db::Database database;
  auto& jobs = populated_jobs(database);
  QueryEngine engine(jobs);

  QueryRequest detail;
  detail.kind = QueryRequest::Kind::JobDetail;
  detail.jobid = 424242;
  const auto r = engine.execute(detail);
  EXPECT_EQ(r.status, QueryStatus::Error);
  EXPECT_FALSE(r.error.empty());

  QueryRequest ts;
  ts.kind = QueryRequest::Kind::Timeseries;
  EXPECT_EQ(engine.execute(ts).status, QueryStatus::Error);
  EXPECT_EQ(engine.stats().failed, 2u);
}

TEST(EngineAdmission, ShedAccountingIsExact) {
  db::Database database;
  auto& jobs = populated_jobs(database);

  // Two workers, queue_limit 4: park both workers on a latch, submit 12.
  // Exactly 4 are admitted (2 parked + 2 queued), exactly 8 shed.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> parked{0};
  QueryEngineOptions opt;
  opt.workers = 2;
  opt.queue_limit = 4;
  opt.before_execute = [&] {
    parked.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  QueryEngine engine(jobs, nullptr, opt);

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 2; ++i) futures.push_back(engine.submit(search_request()));
  while (parked.load() < 2) std::this_thread::yield();
  for (int i = 0; i < 10; ++i) {
    futures.push_back(engine.submit(search_request()));
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  std::size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.status == QueryStatus::Ok) ++ok;
    if (r.status == QueryStatus::Overloaded) ++shed;
  }
  EXPECT_EQ(ok, 4u);
  EXPECT_EQ(shed, 8u);

  const auto s = engine.stats();
  EXPECT_EQ(s.admitted, 4u);
  EXPECT_EQ(s.shed, 8u);
  EXPECT_EQ(s.admitted + s.shed, 12u);        // every submission accounted
  EXPECT_EQ(s.completed + s.timed_out + s.failed, s.admitted);
  EXPECT_EQ(s.in_flight, 0u);
}

TEST(EngineConcurrency, ParallelMixedLoadIsConsistent) {
  db::Database database;
  auto& jobs = populated_jobs(database);
  tsdb::Store store;
  const std::vector<tsdb::DataPoint> seed = {{0, 1.0}, {10, 2.0}};
  store.put_batch("llite.open", {{"host", "c401-001"}}, seed);

  QueryEngineOptions opt;
  opt.workers = 4;
  QueryEngine engine(jobs, &store, opt);

  // Reference payloads computed single-threaded, before the storm.
  const std::string want_search = engine.execute(search_request()).payload;
  const std::string want_hist = engine.execute(histogram_request()).payload;

  constexpr int kPerKind = 64;
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(3 * kPerKind);
  for (int i = 0; i < kPerKind; ++i) {
    futures.push_back(engine.submit(search_request()));
    futures.push_back(engine.submit(histogram_request()));
    QueryRequest detail;
    detail.kind = QueryRequest::Kind::JobDetail;
    detail.jobid = 1 + (i % 4);
    futures.push_back(engine.submit(detail));
  }
  // Live ingest racing the queries: bumps the epoch, invalidates the
  // cache, but must never corrupt a payload (store is thread-safe,
  // jobs table is untouched).
  std::thread ingester([&] {
    for (int i = 0; i < 16; ++i) {
      const std::vector<tsdb::DataPoint> pts = {{100 + i, double(i)}};
      store.put_batch("llite.open", {{"host", "c401-002"}}, pts);
    }
  });

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].get();
    ASSERT_EQ(r.status, QueryStatus::Ok);
    if (i % 3 == 0) {
      EXPECT_EQ(r.payload, want_search);
    } else if (i % 3 == 1) {
      EXPECT_EQ(r.payload, want_hist);
    }
  }
  ingester.join();

  const auto s = engine.stats();
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.completed, s.admitted);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_GT(s.p99_ns, 0u);
}

TEST(EngineConcurrency, WorkerCountDoesNotChangeBytes) {
  db::Database database;
  auto& jobs = populated_jobs(database);

  std::vector<std::string> payloads;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    QueryEngineOptions opt;
    opt.workers = workers;
    QueryEngine engine(jobs, nullptr, opt);
    std::vector<std::future<QueryResult>> futures;
    for (int i = 0; i < 32; ++i) {
      futures.push_back(engine.submit(histogram_request()));
    }
    std::string got;
    for (auto& f : futures) {
      const auto r = f.get();
      ASSERT_EQ(r.status, QueryStatus::Ok);
      if (got.empty()) {
        got = r.payload;
      } else {
        ASSERT_EQ(r.payload, got);
      }
    }
    payloads.push_back(got);
    EXPECT_EQ(engine.workers(), workers);
  }
  EXPECT_EQ(payloads[0], payloads[1]);
  EXPECT_EQ(payloads[1], payloads[2]);
}

TEST(EngineObservability, StatsTableListsEveryCounter) {
  db::Database database;
  auto& jobs = populated_jobs(database);
  QueryEngine engine(jobs);
  engine.execute(search_request());
  const auto table = engine.stats_table();
  for (const char* name :
       {"queries_admitted", "queries_shed", "queries_completed",
        "queries_timed_out", "queries_failed", "queries_in_flight",
        "cache_hits", "cache_misses", "cache_evictions",
        "summary_rebuilds", "p50_ns", "p99_ns"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
}

TEST(EngineCacheKey, CanonicalizationAndSensitivity) {
  // Search-field order is canonicalized away...
  QueryRequest a = search_request();
  a.query.search_fields = {"MetaDataRate__gte=1000", "cpi__lt=2"};
  QueryRequest b = search_request();
  b.query.search_fields = {"cpi__lt=2", "MetaDataRate__gte=1000"};
  EXPECT_EQ(QueryEngine::cache_key(a), QueryEngine::cache_key(b));

  // ...but the deadline is excluded, and every semantic field matters.
  QueryRequest c = a;
  c.deadline_ns = 12345;
  EXPECT_EQ(QueryEngine::cache_key(a), QueryEngine::cache_key(c));

  QueryRequest d = a;
  d.limit = 50;
  EXPECT_NE(QueryEngine::cache_key(a), QueryEngine::cache_key(d));
  QueryRequest e = a;
  e.kind = QueryRequest::Kind::FlaggedList;
  EXPECT_NE(QueryEngine::cache_key(a), QueryEngine::cache_key(e));
  QueryRequest f = a;
  f.query.user = "alice";
  EXPECT_NE(QueryEngine::cache_key(a), QueryEngine::cache_key(f));
}

}  // namespace
}  // namespace tacc::portal
