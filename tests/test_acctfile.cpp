// Scheduler accounting dump: serialization round trips, error handling,
// interop with the pipeline.
#include <gtest/gtest.h>

#include <filesystem>

#include "workload/acctfile.hpp"

namespace tacc::workload {
namespace {

AccountingRecord sample(long id = 12345) {
  AccountingRecord r;
  r.jobid = id;
  r.user = "alice";
  r.uid = 10001;
  r.account = "TG-007";
  r.jobname = "conus12km";
  r.exe = "wrf.exe";
  r.queue = "normal";
  r.nodes = 2;
  r.wayness = 16;
  r.submit_time = util::make_time(2016, 1, 4, 7, 40);
  r.start_time = util::make_time(2016, 1, 4, 8, 0);
  r.end_time = util::make_time(2016, 1, 4, 10, 0);
  r.status = "COMPLETED";
  r.hostnames = {"c400-001", "c400-002"};
  return r;
}

TEST(AcctFile, SerializeLayout) {
  const auto text = serialize_accounting({sample()});
  EXPECT_NE(text.find("JobID|User|UID|Account|"), std::string::npos);
  EXPECT_NE(text.find("12345|alice|10001|TG-007|conus12km|wrf.exe|normal|2|"
                      "16|"),
            std::string::npos);
  EXPECT_NE(text.find("|COMPLETED|c400-001,c400-002"), std::string::npos);
}

TEST(AcctFile, RoundTrip) {
  const auto a = sample(1);
  auto b = sample(2);
  b.hostnames.clear();  // a job with no recorded node list
  b.status = "FAILED";
  const auto parsed = parse_accounting(serialize_accounting({a, b}));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].jobid, 1);
  EXPECT_EQ(parsed[0].user, "alice");
  EXPECT_EQ(parsed[0].account, "TG-007");
  EXPECT_EQ(parsed[0].submit_time, a.submit_time);
  EXPECT_EQ(parsed[0].hostnames, a.hostnames);
  EXPECT_EQ(parsed[1].status, "FAILED");
  EXPECT_TRUE(parsed[1].hostnames.empty());
}

TEST(AcctFile, RejectsMalformedInput) {
  EXPECT_THROW(parse_accounting(""), std::invalid_argument);
  EXPECT_THROW(parse_accounting("not a header\n1|2|3\n"),
               std::invalid_argument);
  const auto good = serialize_accounting({sample()});
  EXPECT_THROW(parse_accounting(good + "1|2|3\n"), std::invalid_argument);
  EXPECT_THROW(
      parse_accounting(good +
                       "x|u|1|a|j|e|q|1|16|0|0|0|OK|\n"),  // bad jobid
      std::invalid_argument);
}

TEST(AcctFile, EmptyDumpHasHeaderOnly) {
  const auto text = serialize_accounting({});
  const auto parsed = parse_accounting(text);
  EXPECT_TRUE(parsed.empty());
}

TEST(AcctFile, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "ts_acct_test.txt";
  std::filesystem::remove(path);
  write_accounting_file(path, {sample(7), sample(8)});
  const auto parsed = read_accounting_file(path);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[1].jobid, 8);
  std::filesystem::remove(path);
  EXPECT_THROW(read_accounting_file(path), std::runtime_error);
}

}  // namespace
}  // namespace tacc::workload
