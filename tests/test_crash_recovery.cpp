// Consumer crash/restart: a consumer killed mid-drain leaves unacked
// deliveries behind; its successor recovers them from the broker and the
// archive's (producer, seq) dedup makes redelivery exactly-once — zero
// records lost, zero records archived twice.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/monitor.hpp"
#include "simhw/cluster.hpp"
#include "transport/consumer.hpp"
#include "transport/daemon.hpp"
#include "util/fault.hpp"

namespace tacc {
namespace {

constexpr util::SimTime kMidnight = 1451606400LL * util::kSecond;

simhw::Cluster small_cluster(int n) {
  simhw::ClusterConfig cc;
  cc.num_nodes = n;
  cc.topology = simhw::Topology{1, 4, false};
  cc.phi_fraction = 0.0;
  return simhw::Cluster(cc);
}

/// Every archived record is unique per (host, time, mark) — a duplicated
/// redelivery would show up as two identical records in one host's log.
void expect_no_duplicate_records(const transport::RawArchive& archive) {
  for (const auto& host : archive.hosts()) {
    const auto log = archive.log(host);
    std::map<std::pair<util::SimTime, std::string>, int> counts;
    for (const auto& rec : log.records) {
      ++counts[{rec.time, rec.mark}];
    }
    for (const auto& [key, n] : counts) {
      EXPECT_EQ(n, 1) << host << " t=" << key.first << " mark=" << key.second;
    }
  }
}

TEST(CrashRecovery, MidDrainCrashLosesNothingDuplicatesNothing) {
  auto cluster = small_cluster(1);
  transport::Broker broker;
  broker.bind("raw", "stats.*");
  transport::RawArchive archive;
  transport::StatsDaemon daemon(cluster.node(0), broker, {},
                                [] { return std::vector<long>{}; });
  const int kRecords = 40;
  for (int i = 0; i < kRecords; ++i) {
    daemon.collect_now(kMidnight + i * util::kMinute, {});
  }
  // First consumer: crash it somewhere mid-drain, in-flight delivery
  // unacked. (The crash flag is checked after consume() returns, so at
  // most one message is consumed-but-unacked; more may simply still be
  // queued.)
  {
    // The callback throttles the consumer so the crash lands mid-drain
    // rather than after it already emptied the queue.
    transport::Consumer first(
        broker, archive, "raw",
        [](const std::string&, const collect::HostLog&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        });
    while (archive.total_records() < kRecords / 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    first.crash();
  }
  const auto archived_at_crash = archive.total_records();
  EXPECT_LT(archived_at_crash, static_cast<std::size_t>(kRecords));

  // Second consumer against the SAME broker and archive: its constructor
  // recover()s the stranded unacked deliveries.
  transport::Consumer second(broker, archive, "raw");
  second.drain();
  EXPECT_EQ(archive.total_records(), static_cast<std::size_t>(kRecords));
  EXPECT_EQ(archive.seen_count(daemon.hostname()),
            static_cast<std::size_t>(kRecords));
  expect_no_duplicate_records(archive);
  second.stop();
}

TEST(CrashRecovery, CrashWithUnackedDeliveryIsRedeliveredOnce) {
  auto cluster = small_cluster(1);
  transport::Broker broker;
  broker.bind("raw", "stats.*");
  transport::RawArchive archive;
  transport::StatsDaemon daemon(cluster.node(0), broker, {},
                                [] { return std::vector<long>{}; });
  daemon.collect_now(kMidnight, {});
  // Consume by hand and "crash" without acking: the classic
  // archived-but-unacked window.
  {
    auto msg = broker.consume("raw", std::chrono::milliseconds(100));
    ASSERT_TRUE(msg);
    const auto chunk = collect::HostLog::parse(msg->body);
    ASSERT_TRUE(archive.append_unique(msg->producer, msg->seq, chunk,
                                      msg->delay, 0));
    // No ack: the consumer dies right here.
  }
  EXPECT_EQ(archive.total_records(), 1u);
  // Successor recovers and redelivers; dedup absorbs the duplicate.
  transport::Consumer successor(broker, archive, "raw");
  successor.drain();
  EXPECT_EQ(archive.total_records(), 1u);
  EXPECT_EQ(successor.resilience().deduped, 1u);
  EXPECT_EQ(broker.depth("raw"), 0u);
  successor.stop();
}

TEST(CrashRecovery, MonitorCrashRestartEndToEnd) {
  auto cluster = small_cluster(4);
  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.interval = 10 * util::kMinute;
  mc.online_analysis = false;
  core::ClusterMonitor monitor(cluster, mc);

  monitor.advance_to(monitor.now() + 2 * util::kHour);
  monitor.crash_consumer();
  // The cluster keeps collecting while no consumer is alive: the broker
  // queues (at-least-once buffering).
  monitor.advance_to(monitor.now() + 2 * util::kHour);
  EXPECT_GT(monitor.broker().depth("raw_stats"), 0u);
  monitor.restart_consumer();
  monitor.advance_to(monitor.now() + util::kHour);
  monitor.drain();

  EXPECT_EQ(monitor.archive().total_records(), monitor.published_unique());
  EXPECT_EQ(monitor.spool_depth(), 0u);
  expect_no_duplicate_records(monitor.archive());
}

TEST(CrashRecovery, RepeatedCrashesUnderBrokerDuplication) {
  // Stack the deck: broker duplicates 30% of publishes AND the consumer is
  // crashed twice mid-run. Delivery must still be exactly-once.
  auto cluster = small_cluster(2);
  auto plan = std::make_shared<util::FaultPlan>(1234);
  util::FaultSpec dup;
  dup.duplicate_rate = 0.3;
  plan->set(std::string(util::kFaultBrokerPublish), dup);

  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.interval = 10 * util::kMinute;
  mc.online_analysis = false;
  mc.fault_plan = plan;
  core::ClusterMonitor monitor(cluster, mc);

  for (int round = 0; round < 2; ++round) {
    monitor.advance_to(monitor.now() + util::kHour);
    monitor.crash_consumer();
    monitor.advance_to(monitor.now() + util::kHour);
    monitor.restart_consumer();
  }
  monitor.advance_to(monitor.now() + util::kHour);
  monitor.drain();

  EXPECT_EQ(monitor.archive().total_records(), monitor.published_unique());
  expect_no_duplicate_records(monitor.archive());
  const auto r = monitor.resilience_stats();
  EXPECT_GT(r.injected_duplicates, 0u);
  EXPECT_EQ(r.deduped, r.injected_duplicates + r.requeued);
}

}  // namespace
}  // namespace tacc
