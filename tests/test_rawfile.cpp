// Raw stats file format: serialization/parsing round trips and error
// handling.
#include <gtest/gtest.h>

#include "collect/rawfile.hpp"
#include "util/rng.hpp"

namespace tacc::collect {
namespace {

HostLog sample_log() {
  HostLog log;
  log.hostname = "c401-101";
  log.arch = "hsw";
  log.schemas = {
      Schema("cpu", {{"user", true, 64, "jiffies", 1.0},
                     {"idle", true, 64, "jiffies", 1.0}}),
      Schema("mem", {{"MemUsed", false, 64, "KB", 1.0}}),
  };
  Record r1;
  r1.time = 1451606400 * util::kSecond;
  r1.jobids = {1001};
  r1.mark = "begin";
  r1.blocks = {{"cpu", "0", {100, 900}},
               {"cpu", "1", {50, 950}},
               {"mem", "", {123456}}};
  Record r2;
  r2.time = r1.time + 600 * util::kSecond;
  r2.jobids = {1001, 1002};
  r2.blocks = {{"cpu", "0", {700, 900}},
               {"cpu", "1", {650, 950}},
               {"mem", "", {223456}}};
  log.records = {r1, r2};
  return log;
}

TEST(RawFile, HeaderFormat) {
  const auto header = sample_log().serialize_header();
  EXPECT_NE(header.find("$tacc_stats 2.1\n"), std::string::npos);
  EXPECT_NE(header.find("$hostname c401-101\n"), std::string::npos);
  EXPECT_NE(header.find("$arch hsw\n"), std::string::npos);
  EXPECT_NE(header.find("!cpu user,E,U=jiffies idle,E,U=jiffies\n"),
            std::string::npos);
}

TEST(RawFile, RecordFormat) {
  const auto log = sample_log();
  const auto text = HostLog::serialize_record(log.records[0]);
  EXPECT_NE(text.find("1451606400 1001 begin\n"), std::string::npos);
  EXPECT_NE(text.find("cpu 0 100 900\n"), std::string::npos);
  EXPECT_NE(text.find("mem - 123456\n"), std::string::npos);
  const auto multi = HostLog::serialize_record(log.records[1]);
  EXPECT_NE(multi.find("1451607000 1001,1002\n"), std::string::npos);
}

TEST(RawFile, RoundTrip) {
  const auto log = sample_log();
  const auto parsed = HostLog::parse(log.serialize());
  EXPECT_EQ(parsed.hostname, log.hostname);
  EXPECT_EQ(parsed.arch, log.arch);
  ASSERT_EQ(parsed.schemas.size(), 2u);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[0].time, log.records[0].time);
  EXPECT_EQ(parsed.records[0].jobids, log.records[0].jobids);
  EXPECT_EQ(parsed.records[0].mark, "begin");
  EXPECT_EQ(parsed.records[1].jobids, (std::vector<long>{1001, 1002}));
  EXPECT_TRUE(parsed.records[1].mark.empty());
  ASSERT_EQ(parsed.records[0].blocks.size(), 3u);
  EXPECT_EQ(parsed.records[0].blocks[0].type, "cpu");
  EXPECT_EQ(parsed.records[0].blocks[0].device, "0");
  EXPECT_EQ(parsed.records[0].blocks[0].values,
            (std::vector<std::uint64_t>{100, 900}));
  EXPECT_EQ(parsed.records[0].blocks[2].device, "");
}

TEST(RawFile, EmptyJobList) {
  HostLog log = sample_log();
  log.records[0].jobids.clear();
  log.records[0].mark.clear();
  const auto parsed = HostLog::parse(log.serialize());
  EXPECT_TRUE(parsed.records[0].jobids.empty());
}

TEST(RawFile, MissingFormatLineRejected) {
  EXPECT_THROW(HostLog::parse("$hostname x\n!cpu user,E\n"),
               std::invalid_argument);
}

TEST(RawFile, UnknownHeaderRejected) {
  EXPECT_THROW(HostLog::parse("$tacc_stats 2.1\n$bogus x\n"),
               std::invalid_argument);
}

TEST(RawFile, UnknownTypeInBodyRejected) {
  const std::string text =
      "$tacc_stats 2.1\n$hostname h\n$arch hsw\n!cpu user,E\n"
      "1451606400 -\ngpu 0 1\n";
  EXPECT_THROW(HostLog::parse(text), std::invalid_argument);
}

TEST(RawFile, ArityMismatchRejected) {
  const std::string text =
      "$tacc_stats 2.1\n$hostname h\n$arch hsw\n!cpu user,E idle,E\n"
      "1451606400 -\ncpu 0 1\n";
  EXPECT_THROW(HostLog::parse(text), std::invalid_argument);
}

TEST(RawFile, DataBeforeTimestampRejected) {
  HostLog log = sample_log();
  EXPECT_THROW(log.parse_records("cpu 0 1 2\n"), std::invalid_argument);
}

TEST(RawFile, BadValueRejected) {
  const std::string text =
      "$tacc_stats 2.1\n$hostname h\n$arch hsw\n!cpu user,E\n"
      "1451606400 -\ncpu 0 abc\n";
  EXPECT_THROW(HostLog::parse(text), std::invalid_argument);
}

TEST(RawFile, ParseRecordsAppends) {
  HostLog log = sample_log();
  const auto extra = HostLog::serialize_record(log.records[1]);
  const std::size_t before = log.records.size();
  log.parse_records(extra);
  EXPECT_EQ(log.records.size(), before + 1);
  EXPECT_EQ(log.records.back().time, log.records[1].time);
}

TEST(RawFile, HeaderOnlyParses) {
  const auto parsed = HostLog::parse(sample_log().serialize_header());
  EXPECT_TRUE(parsed.records.empty());
  EXPECT_EQ(parsed.schemas.size(), 2u);
}

TEST(RawFile, RandomRoundTripProperty) {
  util::Rng rng("rawfile.prop", 3);
  for (int trial = 0; trial < 30; ++trial) {
    HostLog log;
    log.hostname = "c40" + std::to_string(trial) + "-001";
    log.arch = "snb";
    log.schemas = {Schema("t", {{"a", true, 48, "", 1.0},
                                {"b", false, 64, "KB", 2.0}})};
    const int nrec = static_cast<int>(rng.uniform_int(0, 6));
    for (int r = 0; r < nrec; ++r) {
      Record rec;
      rec.time = (1451606400 + r * 600) * util::kSecond;
      if (rng.bernoulli(0.7)) {
        rec.jobids.push_back(rng.uniform_int(1, 1000000));
      }
      const int ndev = static_cast<int>(rng.uniform_int(1, 4));
      for (int d = 0; d < ndev; ++d) {
        rec.blocks.push_back(
            {"t", std::to_string(d),
             {static_cast<std::uint64_t>(rng()),
              static_cast<std::uint64_t>(rng())}});
      }
      log.records.push_back(std::move(rec));
    }
    const auto parsed = HostLog::parse(log.serialize());
    ASSERT_EQ(parsed.records.size(), log.records.size());
    for (std::size_t r = 0; r < log.records.size(); ++r) {
      EXPECT_EQ(parsed.records[r].time, log.records[r].time);
      EXPECT_EQ(parsed.records[r].jobids, log.records[r].jobids);
      ASSERT_EQ(parsed.records[r].blocks.size(), log.records[r].blocks.size());
      for (std::size_t b = 0; b < log.records[r].blocks.size(); ++b) {
        EXPECT_EQ(parsed.records[r].blocks[b].values,
                  log.records[r].blocks[b].values);
      }
    }
  }
}

}  // namespace
}  // namespace tacc::collect
