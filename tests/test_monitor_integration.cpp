// End-to-end integration through the ClusterMonitor facade: both transport
// modes, prolog/epilog marks, archive-to-metrics round trip, failure loss
// asymmetry between the modes, and the online path.
#include <gtest/gtest.h>

#include <cmath>

#include "core/monitor.hpp"
#include "pipeline/ingest.hpp"

namespace tacc::core {
namespace {

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;  // 2016-01-04

simhw::Cluster make_cluster(int n = 4) {
  simhw::ClusterConfig cc;
  cc.num_nodes = n;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 1.0;
  return simhw::Cluster(cc);
}

workload::JobSpec wrf_job(int nodes, util::SimTime start,
                          util::SimTime runtime, long id = 500) {
  workload::JobSpec job;
  job.jobid = id;
  job.user = "alice";
  job.uid = 1001;
  job.profile = "wrf";
  job.exe = "wrf.exe";
  job.nodes = nodes;
  job.wayness = 8;
  job.submit_time = start - util::kMinute;
  job.start_time = start;
  job.end_time = start + runtime;
  return job;
}

TEST(MonitorIntegration, DaemonModeEndToEnd) {
  auto cluster = make_cluster(2);
  MonitorConfig mc;
  mc.mode = TransportMode::Daemon;
  mc.start = kStart;
  ClusterMonitor monitor(cluster, mc);

  const auto job = wrf_job(2, kStart, 2 * util::kHour);
  monitor.job_started(job, {0, 1});
  monitor.advance_to(job.end_time);
  monitor.job_ended(job.jobid);
  monitor.drain();

  // Per node: 1 begin + 12 interval + 1 end = 14.
  EXPECT_EQ(monitor.daemon_stats().collections, 28u);
  EXPECT_EQ(monitor.archive().total_records(), 28u);
  // Real-time availability.
  EXPECT_DOUBLE_EQ(monitor.archive().latency().max(), 0.0);

  const auto log = monitor.archive().log("c400-001");
  EXPECT_EQ(log.records.front().mark, "begin");
  EXPECT_EQ(log.records.back().mark, "end");
  EXPECT_EQ(log.records.front().jobids, std::vector<long>{500});

  // Metrics from the archived stream.
  db::Database database;
  const auto n = pipeline::ingest_from_archive(
      database, monitor.archive(),
      {workload::to_accounting(job, {"c400-001", "c400-002"})});
  EXPECT_EQ(n, 1u);
  const auto& jobs = database.table(pipeline::kJobsTable);
  const auto rows = jobs.select({});
  EXPECT_NEAR(jobs.at(rows[0], "CPU_Usage").as_real(), 0.78, 0.08);
  EXPECT_GT(jobs.at(rows[0], "flops").as_real(), 1.0);
}

TEST(MonitorIntegration, CronModeHasLatencyAndSameContent) {
  auto cluster = make_cluster(2);
  MonitorConfig mc;
  mc.mode = TransportMode::Cron;
  mc.start = kStart;
  ClusterMonitor monitor(cluster, mc);

  const auto job = wrf_job(2, kStart, 2 * util::kHour);
  monitor.job_started(job, {0, 1});
  monitor.advance_to(job.end_time);
  monitor.job_ended(job.jobid);

  // Nothing centrally visible until the next morning's staging window:
  // today's records rotate at the following midnight and rsync during the
  // 01:00-05:00 window after that.
  EXPECT_EQ(monitor.archive().total_records(), 0u);
  monitor.advance_to(kStart + util::kDay + 5 * util::kHour);
  EXPECT_GE(monitor.archive().total_records(), 28u);
  EXPECT_GT(monitor.archive().latency().mean(), 3600.0);

  db::Database database;
  const auto n = pipeline::ingest_from_archive(
      database, monitor.archive(),
      {workload::to_accounting(job, {"c400-001", "c400-002"})});
  EXPECT_EQ(n, 1u);
}

TEST(MonitorIntegration, FailureLossAsymmetry) {
  // The same failure scenario in both modes: daemon mode keeps everything
  // collected before the crash; cron mode loses the unstaged day.
  for (const auto mode : {TransportMode::Daemon, TransportMode::Cron}) {
    auto cluster = make_cluster(1);
    MonitorConfig mc;
    mc.mode = mode;
    mc.start = kStart;
    ClusterMonitor monitor(cluster, mc);
    const auto job = wrf_job(1, kStart, 6 * util::kHour);
    monitor.job_started(job, {0});
    monitor.advance_to(kStart + 3 * util::kHour);
    monitor.fail_node(0);
    monitor.advance_to(kStart + util::kDay + 6 * util::kHour);
    monitor.drain();
    if (mode == TransportMode::Daemon) {
      // ~19 records shipped before the crash are all safe.
      EXPECT_GE(monitor.archive().total_records(), 18u);
    } else {
      EXPECT_EQ(monitor.archive().total_records(), 0u);
      EXPECT_GE(monitor.cron_stats().lost_records, 18u);
    }
  }
}

TEST(MonitorIntegration, OnlineAnalyzerCatchesStormInRealTime) {
  auto cluster = make_cluster(2);
  MonitorConfig mc;
  mc.mode = TransportMode::Daemon;
  mc.start = kStart;
  ClusterMonitor monitor(cluster, mc);
  ASSERT_NE(monitor.online(), nullptr);

  auto job = wrf_job(2, kStart, util::kHour, 900);
  job.profile = "wrf_mdstorm";
  monitor.job_started(job, {0, 1});
  monitor.advance_to(job.end_time);
  monitor.job_ended(job.jobid);
  monitor.drain();

  const auto alerts = monitor.online()->alerts();
  ASSERT_FALSE(alerts.empty());
  bool storm = false;
  for (const auto& a : alerts) storm |= a.rule == "metadata_storm";
  EXPECT_TRUE(storm);
  EXPECT_EQ(monitor.online()->suspend_candidates(), std::set<long>{900});
}

TEST(MonitorIntegration, OnlineQuietOnHealthyJob) {
  auto cluster = make_cluster(1);
  MonitorConfig mc;
  mc.start = kStart;
  ClusterMonitor monitor(cluster, mc);
  const auto job = wrf_job(1, kStart, util::kHour);
  monitor.job_started(job, {0});
  monitor.advance_to(job.end_time);
  monitor.job_ended(job.jobid);
  monitor.drain();
  for (const auto& a : monitor.online()->alerts()) {
    EXPECT_NE(a.rule, "metadata_storm");
  }
  EXPECT_TRUE(monitor.online()->suspend_candidates().empty());
}

TEST(MonitorIntegration, SharedNodeRecordsCarryBothJobs) {
  auto cluster = make_cluster(1);
  MonitorConfig mc;
  mc.start = kStart;
  ClusterMonitor monitor(cluster, mc);
  auto a = wrf_job(1, kStart, util::kHour, 11);
  a.wayness = 4;
  auto b = wrf_job(1, kStart, util::kHour, 22);
  b.wayness = 4;
  monitor.job_started(a, {0});
  monitor.job_started(b, {0});
  monitor.advance_to(kStart + 30 * util::kMinute);
  monitor.drain();
  const auto log = monitor.archive().log("c400-001");
  ASSERT_FALSE(log.records.empty());
  bool both = false;
  for (const auto& rec : log.records) {
    both |= rec.jobids == std::vector<long>{11, 22};
  }
  EXPECT_TRUE(both);
}

TEST(MonitorIntegration, OverheadIsTinyAtTenMinuteSampling) {
  // The paper estimates 0.02% overhead at 10-minute intervals and ~0.09 s
  // per collection on real hardware. Here we check the structural claim:
  // collection wall time is a vanishing fraction of the simulated interval.
  auto cluster = make_cluster(1);
  MonitorConfig mc;
  mc.start = kStart;
  ClusterMonitor monitor(cluster, mc);
  const auto job = wrf_job(1, kStart, 2 * util::kHour);
  monitor.job_started(job, {0});
  monitor.advance_to(job.end_time);
  const auto stats = monitor.daemon_stats();
  EXPECT_GT(stats.collections, 0u);
  EXPECT_LT(stats.total_collect_wall_s / stats.collections, 0.09);
}

}  // namespace
}  // namespace tacc::core
