// Population generator: cohort composition, determinism, FCFS scheduling
// invariants.
#include <gtest/gtest.h>

#include <map>
#include <queue>

#include "workload/apps.hpp"
#include "workload/generator.hpp"

namespace tacc::workload {
namespace {

PopulationConfig small_config() {
  PopulationConfig config;
  config.num_jobs = 1500;
  config.storm_jobs = 20;
  config.seed = 7;
  return config;
}

TEST(AppCatalog, WeightsSumToOne) {
  double total = 0.0;
  for (const auto& e : app_catalog()) total += e.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AppCatalog, ProfilesAreWellFormed) {
  for (const auto& e : app_catalog()) {
    const auto& p = e.profile;
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.exe.empty());
    EXPECT_GT(p.ipc, 0.0);
    EXPECT_GE(p.vec_frac, 0.0);
    EXPECT_LE(p.vec_frac, 1.0);
    EXPECT_LE(p.l1_hit + p.l2_hit + p.llc_hit, 1.0 + 1e-9);
    EXPECT_GE(p.user_frac_base, 0.0);
    EXPECT_LE(p.user_frac_base + p.sys_frac, 1.0);
    EXPECT_GE(p.nodes_median, 1.0);
    EXPECT_GE(p.max_nodes, 1);
  }
}

TEST(AppCatalog, FindProfileResolvesAllAndStorm) {
  for (const auto& e : app_catalog()) {
    EXPECT_EQ(&find_profile(e.profile.name), &e.profile);
  }
  EXPECT_EQ(find_profile("wrf_mdstorm").exe, "wrf.exe");
  EXPECT_THROW(find_profile("no_such_app"), std::invalid_argument);
}

TEST(AppCatalog, StormProfileDwarfsRegularWrf) {
  const auto& wrf = find_profile("wrf");
  const auto& storm = wrf_mdstorm_profile();
  EXPECT_GT(storm.mdc_reqs_ps, 100.0 * wrf.mdc_reqs_ps);
  EXPECT_GT(storm.open_close_ps, 1000.0 * wrf.open_close_ps);
  EXPECT_EQ(storm.exe, wrf.exe);  // same executable, different behaviour
}

TEST(Generator, ProducesRequestedCounts) {
  const auto config = small_config();
  const auto jobs = generate_population(config);
  EXPECT_EQ(jobs.size(), static_cast<std::size_t>(config.num_jobs +
                                                  config.storm_jobs));
}

TEST(Generator, DeterministicBySeed) {
  const auto a = generate_population(small_config());
  const auto b = generate_population(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].jobid, b[i].jobid);
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].start_time, b[i].start_time);
    EXPECT_DOUBLE_EQ(a[i].io_mult, b[i].io_mult);
  }
  auto config = small_config();
  config.seed = 8;
  const auto c = generate_population(config);
  int diff = 0;
  for (std::size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    diff += a[i].user != c[i].user;
  }
  EXPECT_GT(diff, 100);
}

TEST(Generator, StormCohortPresent) {
  const auto config = small_config();
  const auto jobs = generate_population(config);
  int storm = 0;
  for (const auto& j : jobs) {
    if (j.user == config.storm_user) {
      ++storm;
      EXPECT_EQ(j.profile, "wrf_mdstorm");
      EXPECT_EQ(j.exe, "wrf.exe");
      EXPECT_EQ(j.nodes, 16);
      EXPECT_EQ(j.status, "COMPLETED");
    }
  }
  EXPECT_EQ(storm, config.storm_jobs);
}

TEST(Generator, SortedBySubmitAndCausal) {
  const auto jobs = generate_population(small_config());
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_LE(jobs[i - 1].submit_time, jobs[i].submit_time);
  }
  for (const auto& j : jobs) {
    EXPECT_GE(j.start_time, j.submit_time);
    EXPECT_GT(j.end_time, j.start_time);
    EXPECT_GE(j.runtime(), util::from_seconds(180.0));
  }
}

TEST(Generator, FcfsNeverExceedsCapacity) {
  const auto config = small_config();
  const auto jobs = generate_population(config);
  // Sweep events and verify the normal queue's node usage stays within
  // capacity at every instant.
  std::map<std::string, int> capacity = {
      {"normal", config.machine_nodes},
      {"largemem", config.largemem_nodes},
      {"development", config.development_nodes}};
  for (const auto& [queue, cap] : capacity) {
    std::vector<std::pair<util::SimTime, int>> events;
    for (const auto& j : jobs) {
      if (j.queue != queue) continue;
      events.emplace_back(j.start_time, j.nodes);
      events.emplace_back(j.end_time, -j.nodes);
    }
    std::sort(events.begin(), events.end());
    int in_use = 0;
    for (const auto& [t, delta] : events) {
      in_use += delta;
      EXPECT_LE(in_use, cap) << "queue " << queue;
      EXPECT_GE(in_use, 0);
    }
  }
}

TEST(Generator, QueuesPopulated) {
  const auto jobs = generate_population(small_config());
  std::map<std::string, int> counts;
  for (const auto& j : jobs) ++counts[j.queue];
  EXPECT_GT(counts["normal"], 0);
  EXPECT_GT(counts["largemem"], 0);
  EXPECT_GT(counts["development"], 0);
}

TEST(Generator, SomeJobsWaitInQueue) {
  // Shrink the machine so contention (and therefore queue waits) occurs.
  auto config = small_config();
  config.machine_nodes = 24;
  config.largemem_nodes = 1;
  config.development_nodes = 2;
  const auto jobs = generate_population(config);
  int waited = 0;
  for (const auto& j : jobs) waited += j.queue_wait() > 0;
  EXPECT_GT(waited, 0);
}

TEST(Generator, StatusMix) {
  const auto jobs = generate_population(small_config());
  std::map<std::string, int> statuses;
  for (const auto& j : jobs) ++statuses[j.status];
  EXPECT_GT(statuses["COMPLETED"], statuses["FAILED"]);
  EXPECT_GT(statuses["FAILED"], 0);
}

TEST(Generator, VecFracEffResolvedAndBounded) {
  const auto jobs = generate_population(small_config());
  for (const auto& j : jobs) {
    EXPECT_GE(j.vec_frac_eff, 0.0);
    EXPECT_LE(j.vec_frac_eff, 0.98);
  }
}

TEST(Generator, IsProductionFilter) {
  JobSpec j;
  j.queue = "normal";
  j.status = "COMPLETED";
  j.start_time = 0;
  j.end_time = 2 * util::kHour;
  EXPECT_TRUE(is_production(j));
  j.queue = "development";
  EXPECT_FALSE(is_production(j));
  j.queue = "normal";
  j.status = "FAILED";
  EXPECT_FALSE(is_production(j));
  j.status = "COMPLETED";
  j.end_time = 30 * util::kMinute;
  EXPECT_FALSE(is_production(j));
}

TEST(ToAccounting, ProjectsMetadataOnly) {
  JobSpec j;
  j.jobid = 5;
  j.user = "bob";
  j.exe = "a.out";
  j.nodes = 3;
  const auto acct = to_accounting(j, {"c400-001", "c400-002", "c400-003"});
  EXPECT_EQ(acct.jobid, 5);
  EXPECT_EQ(acct.user, "bob");
  EXPECT_EQ(acct.hostnames.size(), 3u);
}

}  // namespace
}  // namespace tacc::workload
