// XALT environment tracking and the file-backed spool.
#include <gtest/gtest.h>

#include <filesystem>

#include "simhw/node.hpp"
#include "collect/registry.hpp"
#include "transport/spool.hpp"
#include "xalt/xalt.hpp"

namespace tacc {
namespace {

namespace fs = std::filesystem;

workload::JobSpec wrf_job(long id = 42) {
  workload::JobSpec job;
  job.jobid = id;
  job.user = "alice";
  job.uid = 10001;
  job.profile = "wrf";
  job.exe = "wrf.exe";
  return job;
}

TEST(Xalt, SynthesisIsDeterministic) {
  const auto a = xalt::synthesize_record(wrf_job());
  const auto b = xalt::synthesize_record(wrf_job());
  EXPECT_EQ(a.exe_path, b.exe_path);
  EXPECT_EQ(a.modules, b.modules);
  EXPECT_EQ(a.libraries, b.libraries);
}

TEST(Xalt, WrfEnvironmentLooksRight) {
  const auto rec = xalt::synthesize_record(wrf_job());
  EXPECT_EQ(rec.jobid, 42);
  EXPECT_NE(rec.exe_path.find("alice/bin/wrf.exe"), std::string::npos);
  EXPECT_EQ(rec.compiler, "intel/15.0.2");
  EXPECT_EQ(rec.mpi, "mvapich2/2.1");
  bool netcdf = false;
  for (const auto& m : rec.modules) netcdf |= m.find("netcdf") == 0;
  EXPECT_TRUE(netcdf);
}

TEST(Xalt, UnvectorizedCohortUsesOldGcc) {
  auto job = wrf_job(43);
  job.profile = "cfd_scalar";
  job.exe = "simpleFoam";
  const auto rec = xalt::synthesize_record(job);
  EXPECT_EQ(rec.compiler, "gcc/4.4.7");  // the diagnosis in section V-A
}

TEST(Xalt, GigeCohortShowsHomeBuiltMpi) {
  auto job = wrf_job(44);
  job.profile = "mpi_gige";
  const auto rec = xalt::synthesize_record(job);
  EXPECT_NE(rec.mpi.find("home-built"), std::string::npos);
}

TEST(Xalt, TableRoundTrip) {
  db::Database database;
  auto& table = xalt::create_xalt_table(database);
  const auto rec = xalt::synthesize_record(wrf_job(77));
  xalt::ingest_record(table, rec);
  const auto found = xalt::lookup(table, 77);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->exe_path, rec.exe_path);
  EXPECT_EQ(found->modules, rec.modules);
  EXPECT_EQ(found->libraries, rec.libraries);
  EXPECT_FALSE(xalt::lookup(table, 999).has_value());
}

TEST(Xalt, RenderContainsModulesAndLibraries) {
  const auto text =
      xalt::render_environment(xalt::synthesize_record(wrf_job()));
  EXPECT_NE(text.find("Modules:"), std::string::npos);
  EXPECT_NE(text.find("intel/15.0.2"), std::string::npos);
  EXPECT_NE(text.find("libnetcdff.so.6"), std::string::npos);
}

// ---------------------------------------------------------------------------

class SpoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("ts_spool_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }
  fs::path root_;
};

collect::HostLog sample_log(const char* host, util::SimTime t0, int records) {
  simhw::NodeConfig nc;
  nc.hostname = host;
  nc.topology = simhw::Topology{1, 2, false};
  simhw::Node node(nc);
  collect::HostSampler sampler(node);
  auto log = sampler.make_log();
  for (int r = 0; r < records; ++r) {
    log.records.push_back(
        sampler.sample(t0 + r * 10 * util::kMinute, {1}, ""));
  }
  return log;
}

TEST_F(SpoolTest, WriteAndReadBack) {
  transport::Spool spool(root_);
  const auto t0 = util::make_time(2016, 1, 4, 8, 0);
  const auto log = sample_log("c400-001", t0, 3);
  EXPECT_EQ(spool.write_host(log), 1u);
  EXPECT_EQ(spool.days(), std::vector<std::string>{"2016-01-04"});
  EXPECT_EQ(spool.hosts("2016-01-04"),
            std::vector<std::string>{"c400-001"});
  const auto read = spool.read_host("2016-01-04", "c400-001");
  EXPECT_EQ(read.hostname, "c400-001");
  ASSERT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.records[0].time, t0);
  EXPECT_EQ(read.records[0].blocks.size(), log.records[0].blocks.size());
}

TEST_F(SpoolTest, SplitsAcrossMidnight) {
  transport::Spool spool(root_);
  // Records straddling midnight land in two daily files.
  const auto t0 = util::make_time(2016, 1, 4, 23, 45);
  EXPECT_EQ(spool.write_host(sample_log("c400-001", t0, 4)), 2u);
  const auto days = spool.days();
  ASSERT_EQ(days.size(), 2u);
  EXPECT_EQ(days[0], "2016-01-04");
  EXPECT_EQ(days[1], "2016-01-05");
  EXPECT_EQ(spool.read_host("2016-01-04", "c400-001").records.size(), 2u);
  EXPECT_EQ(spool.read_host("2016-01-05", "c400-001").records.size(), 2u);
}

TEST_F(SpoolTest, AppendsWithoutDuplicateHeader) {
  transport::Spool spool(root_);
  const auto t0 = util::make_time(2016, 1, 4, 8, 0);
  spool.write_host(sample_log("c400-001", t0, 2));
  spool.write_host(sample_log("c400-001", t0 + util::kHour, 2));
  const auto read = spool.read_host("2016-01-04", "c400-001");
  EXPECT_EQ(read.records.size(), 4u);  // parse fails on duplicate headers
}

TEST_F(SpoolTest, LoadDayIntoArchive) {
  transport::Spool spool(root_);
  const auto t0 = util::make_time(2016, 1, 4, 8, 0);
  spool.write_host(sample_log("c400-001", t0, 3));
  spool.write_host(sample_log("c400-002", t0, 2));
  transport::RawArchive archive;
  EXPECT_EQ(spool.load_day("2016-01-04", archive), 5u);
  EXPECT_EQ(archive.hosts().size(), 2u);
  EXPECT_EQ(archive.log("c400-001").records.size(), 3u);
  EXPECT_FALSE(archive.log("c400-002").schemas.empty());
}

TEST_F(SpoolTest, WriteArchiveRoundTrip) {
  transport::RawArchive archive;
  const auto t0 = util::make_time(2016, 1, 4, 8, 0);
  const auto log = sample_log("c400-003", t0, 2);
  archive.add_header(log.hostname, log.arch, log.schemas);
  for (const auto& r : log.records) archive.append(log.hostname, r, r.time);
  transport::Spool spool(root_);
  EXPECT_EQ(spool.write_archive(archive), 1u);
  transport::RawArchive reloaded;
  spool.load_day("2016-01-04", reloaded);
  EXPECT_EQ(reloaded.total_records(), 2u);
}

TEST_F(SpoolTest, MissingFileThrows) {
  transport::Spool spool(root_);
  EXPECT_THROW(spool.read_host("2016-01-04", "nope"), std::runtime_error);
  EXPECT_TRUE(spool.hosts("2016-09-09").empty());
}

TEST_F(SpoolTest, DayKey) {
  EXPECT_EQ(transport::Spool::day_key(util::make_time(2016, 1, 4, 23, 59)),
            "2016-01-04");
  EXPECT_EQ(transport::Spool::day_key(util::make_time(2016, 1, 5, 0, 0)),
            "2016-01-05");
}

}  // namespace
}  // namespace tacc
