// Per-job mini-simulation: record structure, mark placement, determinism,
// and the key ARC property — metric values must be insensitive to the
// sampling interval because the counters are cumulative (paper section
// IV-A).
#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/ingest.hpp"
#include "pipeline/metrics.hpp"
#include "pipeline/minisim.hpp"
#include "workload/apps.hpp"

namespace tacc::pipeline {
namespace {

workload::JobSpec wrf_job(int nodes = 2) {
  workload::JobSpec job;
  job.jobid = 777;
  job.user = "alice";
  job.uid = 1001;
  job.profile = "wrf";
  job.exe = "wrf.exe";
  job.nodes = nodes;
  job.wayness = 16;
  job.submit_time = util::make_time(2015, 11, 3);
  job.start_time = job.submit_time + 5 * util::kMinute;
  job.end_time = job.start_time + 2 * util::kHour;
  job.vec_frac_eff = 0.6;
  return job;
}

TEST(MiniSim, RecordStructure) {
  MiniSimOptions opts;
  opts.samples = 4;
  const auto data = simulate_job(wrf_job(2), opts);
  ASSERT_EQ(data.hosts.size(), 2u);
  for (const auto& host : data.hosts) {
    // begin + 4 interior + end.
    ASSERT_EQ(host.records.size(), 6u);
    EXPECT_EQ(host.records.front().mark, "begin");
    EXPECT_EQ(host.records.back().mark, "end");
    EXPECT_EQ(host.records.front().time, wrf_job().start_time);
    EXPECT_EQ(host.records.back().time, wrf_job().end_time);
    for (const auto& rec : host.records) {
      EXPECT_EQ(rec.jobids, std::vector<long>{777});
    }
  }
  EXPECT_EQ(data.acct.jobid, 777);
  EXPECT_EQ(data.acct.hostnames.size(), 2u);
}

TEST(MiniSim, DeterministicAcrossRuns) {
  const auto a = simulate_job(wrf_job(1));
  const auto b = simulate_job(wrf_job(1));
  const auto ma = compute_metrics(a);
  const auto mb = compute_metrics(b);
  EXPECT_DOUBLE_EQ(ma.CPU_Usage, mb.CPU_Usage);
  EXPECT_DOUBLE_EQ(ma.MDCReqs, mb.MDCReqs);
  EXPECT_DOUBLE_EQ(ma.flops, mb.flops);
}

TEST(MiniSim, MetricsLookLikeWrf) {
  const auto m = compute_metrics(simulate_job(wrf_job(2)));
  EXPECT_NEAR(m.CPU_Usage, 0.78, 0.06);
  EXPECT_NEAR(m.VecPercent, 0.6, 0.02);  // vec_frac_eff honored
  EXPECT_GT(m.flops, 5.0);
  EXPECT_GT(m.MDCReqs, 20.0);
  EXPECT_LT(m.LLiteOpenClose, 10.0);
  EXPECT_GT(m.MemUsage, 5.0);
  EXPECT_GE(m.MetaDataRate, m.MDCReqs);
  EXPECT_GE(m.LnetMaxBW, m.LnetAveBW);
}

TEST(MiniSim, ArcMetricsAreSamplingIntervalInvariant) {
  // The paper: "infrequent sampling intervals over the lifetime of a job
  // does not prevent an accurate calculation of the ARC" — cumulative
  // counters make average metrics independent of the interior sample count.
  // Intervals must stay under the RAPL 32-bit wrap period (~15 minutes at
  // these powers); 8 interior samples over 2 h gives ~13-minute intervals.
  MiniSimOptions coarse;
  coarse.samples = 8;
  MiniSimOptions fine;
  fine.samples = 24;
  const auto mc = compute_metrics(simulate_job(wrf_job(2), coarse));
  const auto mf = compute_metrics(simulate_job(wrf_job(2), fine));
  const std::pair<double, double> pairs[] = {
      {mc.CPU_Usage, mf.CPU_Usage},   {mc.MDCReqs, mf.MDCReqs},
      {mc.OSCReqs, mf.OSCReqs},       {mc.flops, mf.flops},
      {mc.VecPercent, mf.VecPercent}, {mc.mbw, mf.mbw},
      {mc.LnetAveBW, mf.LnetAveBW},   {mc.GigEBW, mf.GigEBW},
      {mc.PkgWatts, mf.PkgWatts},     {mc.cpi, mf.cpi},
  };
  for (const auto& [c, f] : pairs) {
    ASSERT_FALSE(std::isnan(c));
    ASSERT_FALSE(std::isnan(f));
    // The engine integrates demand on a fixed internal quantum, so ARC
    // metrics agree to rounding noise regardless of the sampling interval.
    EXPECT_NEAR(c, f, std::max(0.002 * std::abs(f), 1e-6))
        << "coarse=" << c << " fine=" << f;
  }
  // Maximum metrics DO sharpen with finer sampling.
  EXPECT_GE(mf.MetaDataRate, 0.9 * mc.MetaDataRate);
}

TEST(MiniSim, MaxMetricsBoundAverages) {
  const auto m = compute_metrics(simulate_job(wrf_job(4)));
  // Max metrics sum over nodes, so they bound nodes * average.
  EXPECT_GE(m.MetaDataRate, m.MDCReqs);
  EXPECT_GE(m.LnetMaxBW, m.LnetAveBW);
  EXPECT_GE(m.InternodeIBMaxBW, m.InternodeIBAveBW);
}

TEST(MiniSim, StormJobReproducesCaseStudySignature) {
  auto job = wrf_job(16);
  job.profile = "wrf_mdstorm";
  job.io_mult = 1.0;
  const auto m = compute_metrics(simulate_job(job));
  // Section V-B: ~30k opens+closes/s, ~560k peak MDS reqs/s (16 nodes),
  // CPU_Usage depressed toward ~0.67.
  EXPECT_GT(m.LLiteOpenClose, 15000.0);
  EXPECT_GT(m.MetaDataRate, 300000.0);
  EXPECT_LT(m.CPU_Usage, 0.72);
  EXPECT_GT(m.CPU_Usage, 0.5);
}

TEST(MiniSim, PhiOnlyForOffloadProfiles) {
  auto job = wrf_job(1);
  const auto data = simulate_job(job);
  for (const auto& host : data.hosts) {
    for (const auto& rec : host.records) {
      for (const auto& block : rec.blocks) EXPECT_NE(block.type, "mic");
    }
  }
  job.profile = "mic_offload";
  const auto m = compute_metrics(simulate_job(job));
  EXPECT_NEAR(m.MIC_Usage, 0.55, 0.1);
}

TEST(MiniSim, IngestPopulationParallel) {
  std::vector<workload::JobSpec> jobs;
  for (int i = 0; i < 12; ++i) {
    auto j = wrf_job(1 + i % 3);
    j.jobid = 1000 + i;
    jobs.push_back(j);
  }
  db::Database database;
  MiniSimOptions opts;
  opts.samples = 2;
  EXPECT_EQ(ingest_population(database, jobs, opts, 4), 12u);
  EXPECT_EQ(database.table(kJobsTable).num_rows(), 12u);
}

}  // namespace
}  // namespace tacc::pipeline
