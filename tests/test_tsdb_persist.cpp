// Durable tiered block storage: flush/reopen and WAL-replay byte-identity,
// downsample-tier query equivalence, compaction equivalence, retention
// ghosts, close() semantics, disk accounting, the background compactor,
// and the golden-file format pins (writer reproduces the committed v1
// fixtures byte for byte; reader decodes them exactly). The crash matrix
// lives in test_tsdb_recovery.cpp; corruption fuzzing in
// test_fuzz_properties.cpp.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "tsdb/blockfile.hpp"
#include "tsdb/compactor.hpp"
#include "tsdb/store.hpp"
#include "tsdb/wal.hpp"
#include "util/rng.hpp"

namespace tacc::tsdb {
namespace {

namespace fs = std::filesystem;

constexpr util::SimTime kT0 = 1451606400LL * util::kSecond;

/// A fresh empty directory under the test tempdir.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Exact equality of query outputs (tags, times, and bit-equal values).
void expect_identical(const std::vector<SeriesResult>& a,
                      const std::vector<SeriesResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].group_tags, b[i].group_tags);
    ASSERT_EQ(a[i].points.size(), b[i].points.size()) << "series " << i;
    for (std::size_t p = 0; p < a[i].points.size(); ++p) {
      EXPECT_EQ(a[i].points[p].time, b[i].points[p].time);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].points[p].value),
                std::bit_cast<std::uint64_t>(b[i].points[p].value))
          << "series " << i << " point " << p << ": "
          << a[i].points[p].value << " vs " << b[i].points[p].value;
    }
  }
}

/// Deterministic mixed workload: 3 hosts x 2 metrics, a month-scale span,
/// out-of-order tails, and one series salted with NaN / Inf / -0.0.
void load_sample(Store& s, int minutes = 240) {
  for (int h = 0; h < 3; ++h) {
    const TagSet tags = {{"host", "c400-00" + std::to_string(h)}};
    std::vector<DataPoint> cpu;
    std::vector<DataPoint> ib;
    for (int i = 0; i < minutes; ++i) {
      const util::SimTime t = kT0 + i * util::kMinute;
      cpu.push_back({t, 100.0 * h + i + 0.25});
      double v = 7.0 * i + h;
      if (h == 2 && i % 17 == 0) v = std::numeric_limits<double>::quiet_NaN();
      if (h == 2 && i % 31 == 0) v = -0.0;
      if (h == 1 && i % 53 == 0) v = std::numeric_limits<double>::infinity();
      ib.push_back({t, v});
    }
    // Out-of-order tail: the last two points swap.
    if (cpu.size() > 2) std::swap(cpu[cpu.size() - 1], cpu[cpu.size() - 2]);
    s.put_batch("taccstats.cpu.user", tags, cpu);
    s.put_batch("taccstats.ib.rx_bytes", tags, ib);
  }
}

/// The probe set: every aggregator family, grouped and ungrouped, tiered
/// and raw cadence, bounded and unbounded ranges.
std::vector<Query> probe_queries() {
  std::vector<Query> qs;
  {
    Query q;
    q.metric = "taccstats.cpu.user";
    qs.push_back(q);  // raw sum, unbounded
  }
  {
    Query q;
    q.metric = "taccstats.cpu.user";
    q.group_by = {"host"};
    q.downsample = util::kHour;
    q.downsample_aggregator = Aggregator::Max;
    qs.push_back(q);
  }
  {
    Query q;
    q.metric = "taccstats.ib.rx_bytes";
    q.group_by = {"host"};
    q.downsample = util::kHour;
    q.downsample_aggregator = Aggregator::Min;
    qs.push_back(q);
  }
  {
    Query q;
    q.metric = "taccstats.ib.rx_bytes";
    q.downsample = util::kHour;
    q.downsample_aggregator = Aggregator::Count;
    q.start = kT0 + 37 * util::kMinute;  // misaligned partial range
    q.end = kT0 + 181 * util::kMinute;
    qs.push_back(q);
  }
  {
    Query q;
    q.metric = "taccstats.ib.rx_bytes";
    q.group_by = {"host"};
    q.downsample = 2 * util::kHour;
    q.downsample_aggregator = Aggregator::Avg;
    qs.push_back(q);
  }
  {
    Query q;
    q.metric = "taccstats.cpu.user";
    q.rate = true;
    q.downsample = 5 * util::kMinute;
    q.downsample_aggregator = Aggregator::Avg;
    qs.push_back(q);
  }
  return qs;
}

void expect_same_results(const Store& a, const Store& b) {
  for (const Query& q : probe_queries()) {
    expect_identical(a.query(q), b.query(q));
  }
}

StoreOptions durable_options(const std::string& dir) {
  StoreOptions o;
  o.data_dir = dir;
  o.shards = 4;
  o.block_points = 64;
  return o;
}

// ---- Flush / reopen ----------------------------------------------------

TEST(TsdbPersist, FlushReopenByteIdentical) {
  const std::string dir = fresh_dir("persist_flush_reopen");
  Store mem;
  load_sample(mem);
  {
    Store s(durable_options(dir));
    load_sample(s);
    s.seal_all();
    s.flush();
    expect_same_results(s, mem);
    s.close();
  }
  Store r = Store::open(dir);
  EXPECT_GE(r.recovery_info().segments_loaded, 1u);
  EXPECT_EQ(r.recovery_info().points_replayed, 0u);  // all segment-covered
  EXPECT_EQ(r.num_points(), mem.num_points());
  expect_same_results(r, mem);
}

TEST(TsdbPersist, DestructorIsCrashEquivalentWalRecovers) {
  const std::string dir = fresh_dir("persist_dtor_wal");
  Store mem;
  load_sample(mem, 60);
  {
    Store s(durable_options(dir));
    load_sample(s, 60);
    // No flush, no close: everything lives in the WALs only.
  }
  Store r = Store::open(dir);
  EXPECT_EQ(r.recovery_info().segments_loaded, 0u);
  EXPECT_GT(r.recovery_info().points_replayed, 0u);
  EXPECT_EQ(r.recovery_info().torn_tails, 0u);
  EXPECT_EQ(r.num_points(), mem.num_points());
  expect_same_results(r, mem);
}

TEST(TsdbPersist, FlushedPointsAreSkippedAtReplayNotDuplicated) {
  const std::string dir = fresh_dir("persist_skip");
  {
    Store s(durable_options(dir));
    load_sample(s, 90);
    s.seal_all();
    s.flush();
    // Post-flush appends land in the rotated WAL generation.
    for (int h = 0; h < 3; ++h) {
      const TagSet tags = {{"host", "c400-00" + std::to_string(h)}};
      std::vector<DataPoint> cpu;
      std::vector<DataPoint> ib;
      for (int i = 90; i < 120; ++i) {
        const util::SimTime t = kT0 + i * util::kMinute;
        cpu.push_back({t, 100.0 * h + i + 0.25});
        double v = 7.0 * i + h;
        if (h == 2 && i % 17 == 0) {
          v = std::numeric_limits<double>::quiet_NaN();
        }
        if (h == 2 && i % 31 == 0) v = -0.0;
        if (h == 1 && i % 53 == 0) {
          v = std::numeric_limits<double>::infinity();
        }
        ib.push_back({t, v});
      }
      s.put_batch("taccstats.cpu.user", tags, cpu);
      s.put_batch("taccstats.ib.rx_bytes", tags, ib);
    }
  }
  // load_sample(90) swaps the last two points of each cpu batch and
  // load_sample(120) swaps a different pair, so rebuild the mirror the
  // same split way for exact order equality.
  Store mem2;
  load_sample(mem2, 90);
  for (int h = 0; h < 3; ++h) {
    const TagSet tags = {{"host", "c400-00" + std::to_string(h)}};
    std::vector<DataPoint> cpu;
    std::vector<DataPoint> ib;
    for (int i = 90; i < 120; ++i) {
      const util::SimTime t = kT0 + i * util::kMinute;
      cpu.push_back({t, 100.0 * h + i + 0.25});
      double v = 7.0 * i + h;
      if (h == 2 && i % 17 == 0) v = std::numeric_limits<double>::quiet_NaN();
      if (h == 2 && i % 31 == 0) v = -0.0;
      if (h == 1 && i % 53 == 0) v = std::numeric_limits<double>::infinity();
      ib.push_back({t, v});
    }
    mem2.put_batch("taccstats.cpu.user", tags, cpu);
    mem2.put_batch("taccstats.ib.rx_bytes", tags, ib);
  }
  Store r = Store::open(dir);
  EXPECT_GE(r.recovery_info().segments_loaded, 1u);
  EXPECT_GT(r.recovery_info().points_replayed, 0u);
  EXPECT_EQ(r.num_points(), mem2.num_points());
  expect_same_results(r, mem2);
}

TEST(TsdbPersist, ReopenWithDifferentShardCountIsByteIdentical) {
  const std::string dir = fresh_dir("persist_reshard");
  Store mem;
  load_sample(mem);
  {
    StoreOptions o = durable_options(dir);
    o.shards = 8;
    Store s(o);
    load_sample(s);
    s.seal_all();
    s.flush();
  }
  StoreOptions o = durable_options(dir);
  o.shards = 2;  // shrink: WAL files 2..7 must still replay by hash
  Store r(o);
  EXPECT_EQ(r.num_points(), mem.num_points());
  expect_same_results(r, mem);
}

// ---- Downsample tiers --------------------------------------------------

TEST(TsdbPersist, TierQueriesMatchRawDecode) {
  const std::string dir = fresh_dir("persist_tiers");
  Store mem;  // in-memory control: no tiers at all
  load_sample(mem, 24 * 60);
  StoreOptions o = durable_options(dir);
  o.block_points = 512;
  Store s(o);
  load_sample(s, 24 * 60);
  s.seal_all();
  s.flush();
  // Hour- and 2-hour-bucket Min/Max/Count take the tier fast path on the
  // durable store (buckets are multiples of the 1h tier); Avg/Sum and the
  // NaN-salted series fall back to decode. Either way: byte-identical.
  expect_same_results(s, mem);
  {
    Query q;  // day buckets over a full day, coarsest tier
    q.metric = "taccstats.cpu.user";
    q.group_by = {"host"};
    q.downsample = util::kDay;
    q.downsample_aggregator = Aggregator::Max;
    expect_identical(s.query(q), mem.query(q));
    q.downsample_aggregator = Aggregator::Count;
    expect_identical(s.query(q), mem.query(q));
    q.metric = "taccstats.ib.rx_bytes";  // NaN-salted: tier path must duck
    expect_identical(s.query(q), mem.query(q));
  }
}

// ---- Compaction and retention ------------------------------------------

TEST(TsdbPersist, CompactionMergesWithoutChangingQueryBytes) {
  const std::string dir = fresh_dir("persist_compact");
  Store mem;
  load_sample(mem);
  StoreOptions o = durable_options(dir);
  o.block_points = 16;  // many small blocks to merge
  Store s(o);
  load_sample(s);
  s.seal_all();
  s.flush();
  s.put("taccstats.cpu.user", {{"host", "c400-000"}},
        kT0 + 500 * util::kMinute, 1.0);
  mem.put("taccstats.cpu.user", {{"host", "c400-000"}},
          kT0 + 500 * util::kMinute, 1.0);
  s.seal_all();
  s.flush();  // two segments now
  EXPECT_EQ(s.disk_stats().segment_files, 2u);
  const std::size_t points_before = s.num_points();
  ASSERT_TRUE(s.compact());
  EXPECT_EQ(s.disk_stats().segment_files, 1u);
  EXPECT_EQ(s.num_points(), points_before);
  expect_same_results(s, mem);
  // Nothing left to do: already one segment of merged blocks.
  EXPECT_FALSE(s.compact());
  // And the compacted directory recovers byte-identically.
  s.close();
  Store r = Store::open(dir);
  EXPECT_EQ(r.num_points(), mem.num_points());
  expect_same_results(r, mem);
}

TEST(TsdbPersist, RetentionGhostsServeTiersThenExpire) {
  const std::string dir = fresh_dir("persist_retention");
  Store mem;
  StoreOptions o = durable_options(dir);
  o.shards = 1;
  o.block_points = 60;  // 1-min cadence: one block per hour, hour-aligned
  // Data time spans [0, 8h); the newest point is at 7h59m. The half-hour
  // slack puts each horizon mid-block, so exactly the hour-aligned blocks
  // expire: block 0 is past the tier horizon (dropped), blocks 1-2 are
  // past the raw horizon (ghosted), blocks 3-7 keep raw.
  o.retention["taccstats.cpu."] = {4 * util::kHour + 30 * util::kMinute,
                                   6 * util::kHour + 30 * util::kMinute};
  Store s(o);
  for (int i = 0; i < 8 * 60; ++i) {
    const util::SimTime t = kT0 + i * util::kMinute;
    s.put("taccstats.cpu.user", {{"host", "c400-000"}}, t, 1000.0 + i);
    mem.put("taccstats.cpu.user", {{"host", "c400-000"}}, t, 1000.0 + i);
  }
  s.seal_all();
  s.flush();
  const std::size_t points_before = s.num_points();
  ASSERT_TRUE(s.compact());
  // Block 0's 60 points are gone with it; ghost summaries keep their
  // counts for conservation accounting until the tier horizon.
  EXPECT_EQ(s.num_points(), points_before - 60);
  {
    Query q;  // raw window: decode path, exact vs the full-data control
    q.metric = "taccstats.cpu.user";
    q.start = kT0 + 3 * util::kHour;
    expect_identical(s.query(q), mem.query(q));
  }
  {
    Query q;  // hour-tier from 1h on: ghosts answer from tier entries
    q.metric = "taccstats.cpu.user";
    q.start = kT0 + util::kHour;
    q.downsample = util::kHour;
    q.downsample_aggregator = Aggregator::Max;
    expect_identical(s.query(q), mem.query(q));
    q.downsample_aggregator = Aggregator::Count;
    expect_identical(s.query(q), mem.query(q));
  }
  {
    Query q;  // raw points inside the ghosted window decode to nothing
    q.metric = "taccstats.cpu.user";
    q.start = kT0 + util::kHour;
    q.end = kT0 + 2 * util::kHour;
    const auto res = s.query(q);
    EXPECT_TRUE(res.empty() || res[0].points.empty());
  }
  // The ghosted directory still recovers cleanly.
  s.close();
  Store r(o);
  EXPECT_EQ(r.num_points(), points_before - 60);
  Query q;
  q.metric = "taccstats.cpu.user";
  q.start = kT0 + util::kHour;
  q.downsample = util::kHour;
  q.downsample_aggregator = Aggregator::Max;
  expect_identical(r.query(q), mem.query(q));
}

// ---- close(), sync modes, stats ----------------------------------------

TEST(TsdbPersist, CloseRejectsMutationsButServesQueries) {
  const std::string dir = fresh_dir("persist_close");
  Store s(durable_options(dir));
  load_sample(s, 30);
  s.close();
  s.close();  // idempotent
  EXPECT_THROW(s.put("taccstats.cpu.user", {{"host", "x"}}, kT0, 1.0),
               std::logic_error);
  EXPECT_THROW(s.seal_all(), std::logic_error);
  EXPECT_THROW(s.flush(), std::logic_error);
  Query q;
  q.metric = "taccstats.cpu.user";
  EXPECT_FALSE(s.query(q).empty());
  EXPECT_GT(s.num_points(), 0u);
}

TEST(TsdbPersist, WalSyncModesProduceIdenticalRecovery) {
  std::vector<Store> reopened;
  for (const WalSync mode :
       {WalSync::Never, WalSync::OnFlush, WalSync::Always}) {
    const std::string dir =
        fresh_dir("persist_sync_" + std::to_string(static_cast<int>(mode)));
    {
      StoreOptions o = durable_options(dir);
      o.wal_sync = mode;
      Store s(o);
      load_sample(s, 45);
      // dtor without close: recovery comes from the WAL alone
    }
    reopened.push_back(Store::open(dir));
  }
  ASSERT_EQ(reopened.size(), 3u);
  expect_same_results(reopened[0], reopened[1]);
  expect_same_results(reopened[1], reopened[2]);
  EXPECT_EQ(reopened[0].num_points(), reopened[2].num_points());
}

TEST(TsdbPersist, DiskStatsAccountForLiveFiles) {
  const std::string dir = fresh_dir("persist_stats");
  StoreOptions o = durable_options(dir);
  o.block_points = 128;
  Store s(o);
  load_sample(s, 12 * 60);
  s.seal_all();
  s.flush();
  const DiskStats ds = s.disk_stats();
  EXPECT_EQ(ds.segment_files, 1u);
  EXPECT_GT(ds.segment_bytes, 0u);
  EXPECT_GT(ds.tier_bytes, 0u);
  EXPECT_LT(ds.tier_bytes, ds.segment_bytes);
  EXPECT_GT(ds.wal_bytes, 0u);  // rotated checkpoint-only generations
  EXPECT_EQ(ds.persisted_points, s.num_points());
  // The primary copy (tiers excluded) must stay within the compression
  // budget the bench gates at 1.44 bytes/point; leave slack here since
  // this workload is tiny and NaN-salted.
  EXPECT_LT(static_cast<double>(ds.primary_bytes()) /
                static_cast<double>(ds.persisted_points),
            8.0);
}

TEST(TsdbPersist, BackgroundCompactorPersistsWithoutChangingResults) {
  const std::string dir = fresh_dir("persist_compactor");
  Store mem;
  load_sample(mem);
  StoreOptions o = durable_options(dir);
  o.block_points = 32;
  Store s(o);
  {
    Compactor c(s, {.period = std::chrono::milliseconds(1),
                    .compact_every = 2});
    load_sample(s);
    s.seal_all();
    c.run_once(/*with_compact=*/true);  // deterministic cycle on top
    EXPECT_GE(c.cycles(), 1u);
    EXPECT_EQ(c.errors(), 0u);
    c.stop();
  }
  expect_same_results(s, mem);
  EXPECT_GE(s.disk_stats().segment_files, 1u);
  s.close();
  Store r = Store::open(dir);
  expect_same_results(r, mem);
}

// ---- Golden-file format pins -------------------------------------------
//
// The committed fixtures under tests/data/golden/ pin format v1 byte for
// byte. If these tests fail after an intentional format change, bump the
// version constants (and lint TS050's fingerprint) and regenerate with
//   TACC_REGEN_GOLDEN=1 ./test_tsdb_persist
// A silent regeneration without a version bump is exactly the bug this
// layer exists to catch, so never do that.

const char* golden_fixture_dir() {
  return TACC_SOURCE_DIR "/tests/data/golden";
}

/// The golden data: every edge value class the codecs special-case (NaN,
/// +/-Inf, -0.0, denormal, max, exact zero) on series 0, an irregular
/// cadence exercising the dod prefix classes on series 1.
std::vector<DataPoint> golden_points(int which) {
  const double edge[] = {
      0.0,
      -0.0,
      1.0,
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -1234.5678,
      3.0e-9,
  };
  std::vector<DataPoint> pts;
  for (int i = 0; i < 10; ++i) {
    if (which == 0) {
      pts.push_back({kT0 + i * util::kMinute, edge[i]});
    } else {
      pts.push_back({kT0 + i * i * util::kSecond, 1.0e9 + 12345.0 * i});
    }
  }
  return pts;
}

/// The golden store: 1 shard, tiny blocks, two series of golden_points.
void load_golden(Store& s) {
  s.put_batch("golden.metric", {{"host", "c400-000"}, {"unit", "0"}},
              golden_points(0));
  s.put_batch("golden.metric", {{"host", "c400-001"}, {"unit", "1"}},
              golden_points(1));
}

StoreOptions golden_options(const std::string& dir) {
  StoreOptions o;
  o.data_dir = dir;
  o.shards = 1;
  o.block_points = 4;
  return o;
}

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(TsdbPersist, GoldenWriterReproducesCommittedBytes) {
  const std::string dir = fresh_dir("persist_golden");
  {
    Store s(golden_options(dir));
    load_golden(s);
    s.seal_all();
    s.flush();
    // One post-flush batch so the live WAL generation carries a
    // checkpoint (with head points) followed by a batch record.
    s.put_batch("golden.metric", {{"host", "c400-000"}, {"unit", "0"}},
                std::vector<DataPoint>{{kT0 + util::kHour, 42.0},
                                       {kT0 + util::kHour + 1, -42.0}});
  }
  // Fresh dir: recovery rotates to gen 1, flush to gen 2.
  const char* files[] = {"MANIFEST", "seg-000001.blk", "wal-000-000002.log"};
  const fs::path fixtures(golden_fixture_dir());
  if (std::getenv("TACC_REGEN_GOLDEN") != nullptr) {
    fs::create_directories(fixtures);
    for (const char* f : files) {
      fs::copy_file(fs::path(dir) / f, fixtures / f,
                    fs::copy_options::overwrite_existing);
    }
    GTEST_SKIP() << "regenerated golden fixtures in " << fixtures;
  }
  for (const char* f : files) {
    const auto got = read_bytes(fs::path(dir) / f);
    const auto want = read_bytes(fixtures / f);
    ASSERT_FALSE(want.empty()) << "missing fixture " << f
                               << " — run with TACC_REGEN_GOLDEN=1";
    EXPECT_EQ(got, want)
        << f << ": the writer no longer reproduces the v1 fixture. If the "
        << "format change is intentional, bump the format version (see "
        << "lint TS050) and regenerate with TACC_REGEN_GOLDEN=1.";
  }
}

TEST(TsdbPersist, GoldenReaderDecodesCommittedFixtureExactly) {
  const fs::path fixtures(golden_fixture_dir());
  if (!fs::exists(fixtures / "seg-000001.blk")) {
    GTEST_SKIP() << "fixtures not generated yet";
  }
  const LoadedSegment seg =
      load_segment((fixtures / "seg-000001.blk").string());
  EXPECT_EQ(seg.file_seq, 1u);
  ASSERT_EQ(seg.series.size(), 2u);
  // Sorted by (metric, canonical tags): c400-000 first.
  const char* hosts[] = {"c400-000", "c400-001"};
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(seg.series[i].metric, "golden.metric");
    EXPECT_EQ(seg.series[i].tags.at("host"), hosts[i]);
    // block_points=4, 10 points, seal_all: blocks of 4+4+2.
    ASSERT_EQ(seg.series[i].blocks.size(), 3u);
    EXPECT_EQ(seg.series[i].cum_sealed, 10u);
    std::vector<DataPoint> got;
    for (const auto& blk : seg.series[i].blocks) {
      EXPECT_TRUE(blk->has_raw());
      EXPECT_FALSE(blk->tiers().empty());
      blk->decode_append(got);
    }
    const auto want = golden_points(i);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t p = 0; p < want.size(); ++p) {
      EXPECT_EQ(got[p].time, want[p].time);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[p].value),
                std::bit_cast<std::uint64_t>(want[p].value))
          << "series " << i << " point " << p;
    }
  }

  const WalReplay wal =
      replay_wal((fixtures / "wal-000-000002.log").string());
  EXPECT_EQ(wal.shard, 0u);
  EXPECT_EQ(wal.gen, 2u);
  EXPECT_TRUE(wal.checkpoint_complete);
  EXPECT_FALSE(wal.torn_offset.has_value());
  // Checkpoint for both (empty-head) series, then the post-flush batch.
  ASSERT_EQ(wal.records.size(), 3u);
  EXPECT_EQ(wal.records[0].type, WalRecordType::Checkpoint);
  EXPECT_EQ(wal.records[0].cum_sealed, 10u);
  EXPECT_TRUE(wal.records[0].points.empty());
  EXPECT_EQ(wal.records[1].type, WalRecordType::Checkpoint);
  EXPECT_EQ(wal.records[2].type, WalRecordType::Batch);
  ASSERT_EQ(wal.records[2].points.size(), 2u);
  EXPECT_EQ(wal.records[2].points[0].time, kT0 + util::kHour);
  EXPECT_EQ(wal.records[2].points[0].value, 42.0);

  const Manifest m = read_manifest(fixtures.string());
  EXPECT_EQ(m.next_seq, 2u);
  ASSERT_EQ(m.segments.size(), 1u);
  EXPECT_EQ(m.segments[0], 1u);
}

TEST(TsdbPersist, OpenThrowsCorruptionErrorOnDamagedManifest) {
  const std::string dir = fresh_dir("persist_damaged");
  {
    Store s(durable_options(dir));
    load_sample(s, 10);
    s.close();
  }
  // Flip one byte of the manifest body.
  const fs::path manifest = fs::path(dir) / "MANIFEST";
  auto bytes = read_bytes(manifest);
  ASSERT_GT(bytes.size(), 6u);
  bytes[5] ^= 0x40;
  std::ofstream(manifest, std::ios::binary)
      .write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  EXPECT_THROW(Store::open(dir), CorruptionError);
}

}  // namespace
}  // namespace tacc::tsdb
