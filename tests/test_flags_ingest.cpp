// Flag rules and DB ingest: each rule's trigger boundary, NULL handling,
// column population.
#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/ingest.hpp"

namespace tacc::pipeline {
namespace {

workload::AccountingRecord acct(const char* queue = "normal") {
  workload::AccountingRecord a;
  a.jobid = 9;
  a.user = "u";
  a.exe = "x";
  a.jobname = "j";
  a.queue = queue;
  a.status = "COMPLETED";
  a.nodes = 4;
  a.wayness = 16;
  a.submit_time = 0;
  a.start_time = 10 * util::kMinute;
  a.end_time = 2 * util::kHour;
  return a;
}

JobMetrics healthy() {
  JobMetrics m;
  m.MetaDataRate = 100.0;
  m.GigEBW = 0.001;
  m.MemUsage = 20.0;
  m.idle = 0.95;
  m.catastrophe = 0.9;
  m.cpi = 0.8;
  m.VecPercent = 0.6;
  m.flops = 20.0;
  return m;
}

bool has_flag(const std::vector<Flag>& flags, const std::string& name) {
  for (const auto& f : flags) {
    if (f.name == name) return true;
  }
  return false;
}

TEST(Flags, HealthyJobHasNone) {
  EXPECT_TRUE(evaluate_flags(acct(), healthy()).empty());
}

TEST(Flags, HighMetadataRate) {
  auto m = healthy();
  m.MetaDataRate = 500000.0;
  const auto flags = evaluate_flags(acct(), m);
  EXPECT_TRUE(has_flag(flags, "high_metadata_rate"));
  EXPECT_NE(flags[0].detail.find("500000"), std::string::npos);
}

TEST(Flags, HighGigE) {
  auto m = healthy();
  m.GigEBW = 50.0;
  EXPECT_TRUE(has_flag(evaluate_flags(acct(), m), "high_gige"));
}

TEST(Flags, LargememUnderuseOnlyInLargememQueue) {
  auto m = healthy();
  m.MemUsage = 10.0;
  EXPECT_FALSE(
      has_flag(evaluate_flags(acct("normal"), m), "largemem_underuse"));
  EXPECT_TRUE(
      has_flag(evaluate_flags(acct("largemem"), m), "largemem_underuse"));
  m.MemUsage = 700.0;
  EXPECT_FALSE(
      has_flag(evaluate_flags(acct("largemem"), m), "largemem_underuse"));
}

TEST(Flags, IdleNodes) {
  auto m = healthy();
  m.idle = 0.05;
  EXPECT_TRUE(has_flag(evaluate_flags(acct(), m), "idle_nodes"));
}

TEST(Flags, CatastropheCpuVariation) {
  auto m = healthy();
  m.catastrophe = 0.1;
  EXPECT_TRUE(has_flag(evaluate_flags(acct(), m), "cpu_time_variation"));
}

TEST(Flags, HighCpi) {
  auto m = healthy();
  m.cpi = 5.0;
  EXPECT_TRUE(has_flag(evaluate_flags(acct(), m), "high_cpi"));
}

TEST(Flags, LowVectorizationNeedsRealFpWork) {
  auto m = healthy();
  m.VecPercent = 0.001;
  EXPECT_TRUE(has_flag(evaluate_flags(acct(), m), "low_vectorization"));
  m.flops = 0.0;  // no FP work -> not flagged
  EXPECT_FALSE(has_flag(evaluate_flags(acct(), m), "low_vectorization"));
}

TEST(Flags, NaNMetricsNeverFlag) {
  const JobMetrics m;  // all NaN
  EXPECT_TRUE(evaluate_flags(acct("largemem"), m).empty());
}

TEST(Flags, CustomThresholds) {
  auto m = healthy();
  FlagThresholds t;
  t.metadata_rate = 50.0;
  EXPECT_TRUE(
      has_flag(evaluate_flags(acct(), m, t), "high_metadata_rate"));
}

TEST(Flags, NamesJoin) {
  EXPECT_EQ(flag_names({{"a", ""}, {"b", ""}}), "a,b");
  EXPECT_EQ(flag_names({}), "");
}

TEST(Ingest, CreatesIndexedTable) {
  db::Database database;
  auto& jobs = create_jobs_table(database);
  EXPECT_TRUE(jobs.has_index("exe"));
  EXPECT_TRUE(jobs.has_index("user"));
  EXPECT_TRUE(jobs.has_index("queue"));
  // One column per metadata field + metric.
  EXPECT_EQ(jobs.columns().size(), 16u + JobMetrics::labels().size());
  EXPECT_THROW(create_jobs_table(database), std::invalid_argument);
}

TEST(Ingest, RowValuesAndDerivedColumns) {
  db::Database database;
  auto& jobs = create_jobs_table(database);
  auto m = healthy();
  m.CPU_Usage = 0.8;
  const auto id = ingest_job(jobs, acct(), m, {{"high_cpi", "d"}});
  EXPECT_EQ(jobs.at(id, "jobid").as_int(), 9);
  EXPECT_EQ(jobs.at(id, "flags").as_text(), "high_cpi");
  EXPECT_DOUBLE_EQ(jobs.at(id, "runtime").as_real(), 6600.0);
  EXPECT_DOUBLE_EQ(jobs.at(id, "queue_wait").as_real(), 600.0);
  EXPECT_DOUBLE_EQ(jobs.at(id, "node_hours").as_real(),
                   6600.0 / 3600.0 * 4);
  EXPECT_DOUBLE_EQ(jobs.at(id, "CPU_Usage").as_real(), 0.8);
}

TEST(Ingest, NaNBecomesNull) {
  db::Database database;
  auto& jobs = create_jobs_table(database);
  const auto id = ingest_job(jobs, acct(), JobMetrics{}, {});
  EXPECT_TRUE(jobs.at(id, "MetaDataRate").is_null());
  EXPECT_TRUE(jobs.at(id, "MIC_Usage").is_null());
  // NULLs never satisfy numeric range predicates.
  EXPECT_TRUE(jobs.select({{"MetaDataRate", db::Op::Gt, db::Value(0.0)}})
                  .empty());
}

}  // namespace
}  // namespace tacc::pipeline
