// Online analyzer (section VI-B) and shared-node process tracking
// (section VI-C).
#include <gtest/gtest.h>

#include "core/online.hpp"
#include "core/sharednode.hpp"

namespace tacc::core {
namespace {

constexpr util::SimTime kT0 = 1451606400LL * util::kSecond;

collect::HostLog chunk_with(std::uint64_t mdc_reqs, std::uint64_t eth_rx,
                            std::uint64_t mem_used, util::SimTime t,
                            std::vector<long> jobs) {
  collect::HostLog log;
  log.hostname = "c400-001";
  log.arch = "hsw";
  log.schemas = {
      collect::Schema("mdc", {{"reqs", true, 64, "reqs", 1.0},
                              {"wait", true, 64, "usec", 1.0}}),
      collect::Schema("net", {{"rx_bytes", true, 64, "bytes", 1.0},
                              {"rx_packets", true, 64, "packets", 1.0},
                              {"tx_bytes", true, 64, "bytes", 1.0},
                              {"tx_packets", true, 64, "packets", 1.0}}),
      collect::Schema("mem", {{"MemTotal", false, 64, "KB", 1.0},
                              {"MemFree", false, 64, "KB", 1.0},
                              {"Cached", false, 64, "KB", 1.0},
                              {"MemUsed", false, 64, "KB", 1.0}}),
  };
  collect::Record rec;
  rec.time = t;
  rec.jobids = std::move(jobs);
  rec.blocks = {
      {"mdc", "t", {mdc_reqs, mdc_reqs * 50}},
      {"net", "eth0", {eth_rx, eth_rx / 1500, 0, 0}},
      {"mem", "", {32000000, 0, 0, mem_used}},
  };
  log.records.push_back(std::move(rec));
  return log;
}

TEST(Online, NoAlertOnFirstRecord) {
  OnlineAnalyzer analyzer;
  analyzer.on_chunk("c400-001", chunk_with(1000000, 0, 100, kT0, {1}));
  EXPECT_TRUE(analyzer.alerts().empty());
  EXPECT_EQ(analyzer.records_analyzed(), 1u);
}

TEST(Online, MetadataStormFiresAndSuspends) {
  OnlineAnalyzer analyzer;
  analyzer.on_chunk("c400-001", chunk_with(0, 0, 100, kT0, {42}));
  // 30M requests in 600 s = 50k/s > 20k/s threshold.
  analyzer.on_chunk("c400-001",
                    chunk_with(30000000, 0, 100,
                               kT0 + 600 * util::kSecond, {42}));
  const auto alerts = analyzer.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "metadata_storm");
  EXPECT_NEAR(alerts[0].value, 50000.0, 1.0);
  EXPECT_EQ(alerts[0].hostname, "c400-001");
  EXPECT_EQ(alerts[0].jobids, std::vector<long>{42});
  EXPECT_EQ(analyzer.suspend_candidates(), std::set<long>{42});
}

TEST(Online, QuietStreamStaysQuiet) {
  OnlineAnalyzer analyzer;
  for (int i = 0; i < 10; ++i) {
    analyzer.on_chunk("c400-001",
                      chunk_with(i * 100, i * 1000, 100,
                                 kT0 + i * 600 * util::kSecond, {1}));
  }
  EXPECT_TRUE(analyzer.alerts().empty());
  EXPECT_TRUE(analyzer.suspend_candidates().empty());
}

TEST(Online, GigeTrafficRule) {
  OnlineAnalyzer analyzer;
  analyzer.on_chunk("c400-001", chunk_with(0, 0, 100, kT0, {7}));
  analyzer.on_chunk(
      "c400-001",
      chunk_with(0, 6000000000ULL, 100, kT0 + 600 * util::kSecond, {7}));
  const auto alerts = analyzer.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "gige_traffic");
  // GigE traffic does not mark jobs for suspension.
  EXPECT_TRUE(analyzer.suspend_candidates().empty());
}

TEST(Online, MemoryPressureRule) {
  OnlineAnalyzer analyzer;
  analyzer.on_chunk("c400-001", chunk_with(0, 0, 100, kT0, {7}));
  analyzer.on_chunk("c400-001",
                    chunk_with(0, 0, 31000000,
                               kT0 + 600 * util::kSecond, {7}));
  const auto alerts = analyzer.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "memory_pressure");
  EXPECT_GT(alerts[0].value, 0.95);
}

TEST(Online, PerHostStateIsolated) {
  OnlineAnalyzer analyzer;
  analyzer.on_chunk("h1", chunk_with(0, 0, 100, kT0, {1}));
  // h2's first record: no baseline, no alert even with a huge count.
  analyzer.on_chunk("h2", chunk_with(50000000, 0, 100, kT0, {2}));
  EXPECT_TRUE(analyzer.alerts().empty());
}

// ---------------------------------------------------------------------------

TEST(SharedNode, IdleSignalCollectsImmediately) {
  std::vector<std::pair<util::SimTime, std::string>> calls;
  SharedNodeTracker tracker(
      [&](util::SimTime t, const std::string& m) { calls.emplace_back(t, m); });
  tracker.process_started(kT0, 100, 1);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], std::make_pair(kT0, std::string("procstart")));
  EXPECT_EQ(tracker.stats().collections_triggered, 1u);
  EXPECT_EQ(tracker.busy_until(), kT0 + util::from_seconds(0.09));
}

TEST(SharedNode, TwoSimultaneousSignalsBothHandled) {
  std::vector<std::pair<util::SimTime, std::string>> calls;
  SharedNodeTracker tracker(
      [&](util::SimTime t, const std::string& m) { calls.emplace_back(t, m); });
  tracker.process_started(kT0, 100, 1);
  tracker.process_started(kT0, 101, 2);  // same instant: queued
  ASSERT_EQ(calls.size(), 2u);
  // The queued collection runs right after the first finishes.
  EXPECT_EQ(calls[1].first, kT0 + util::from_seconds(0.09));
  EXPECT_EQ(tracker.stats().signals_coalesced, 1u);
  EXPECT_EQ(tracker.stats().signals_missed, 0u);
}

TEST(SharedNode, ThirdSimultaneousSignalMissed) {
  int collections = 0;
  SharedNodeTracker tracker(
      [&](util::SimTime, const std::string&) { ++collections; });
  tracker.process_started(kT0, 100, 1);
  tracker.process_started(kT0, 101, 2);
  tracker.process_started(kT0 + util::from_seconds(0.01), 102, 3);
  EXPECT_EQ(collections, 2);
  EXPECT_EQ(tracker.stats().signals_missed, 1u);
  // The missed process is still in the job list for the next interval
  // collection.
  EXPECT_EQ(tracker.current_jobs(), (std::vector<long>{1, 2, 3}));
}

TEST(SharedNode, QueueSlotFreesWhenQueuedCollectionStarts) {
  int collections = 0;
  SharedNodeTracker tracker(
      [&](util::SimTime, const std::string&) { ++collections; });
  tracker.process_started(kT0, 100, 1);                             // runs
  tracker.process_started(kT0 + util::from_seconds(0.01), 101, 2);  // queued
  // At +0.10 the queued collection has started: the slot is free again.
  tracker.process_started(kT0 + util::from_seconds(0.10), 102, 3);
  EXPECT_EQ(collections, 3);
  EXPECT_EQ(tracker.stats().signals_missed, 0u);
  EXPECT_EQ(tracker.stats().signals_coalesced, 2u);
}

TEST(SharedNode, EveryProcessGetsTwoCollections) {
  // Well-spaced processes: every start and stop triggers a collection.
  int collections = 0;
  SharedNodeTracker tracker(
      [&](util::SimTime, const std::string&) { ++collections; });
  for (int p = 0; p < 5; ++p) {
    const util::SimTime t = kT0 + p * util::kSecond;
    tracker.process_started(t, 100 + p, p);
    tracker.process_ended(t + util::kSecond / 2, 100 + p, p);
  }
  EXPECT_EQ(collections, 10);
  EXPECT_EQ(tracker.stats().signals_received, 10u);
  EXPECT_TRUE(tracker.current_jobs().empty());
}

TEST(SharedNode, JobListTracksLiveProcesses) {
  SharedNodeTracker tracker([](util::SimTime, const std::string&) {});
  tracker.process_started(kT0, 1, 10);
  tracker.process_started(kT0 + util::kSecond, 2, 10);  // same job, 2 procs
  tracker.process_started(kT0 + 2 * util::kSecond, 3, 20);
  EXPECT_EQ(tracker.current_jobs(), (std::vector<long>{10, 20}));
  tracker.process_ended(kT0 + 3 * util::kSecond, 1, 10);
  EXPECT_EQ(tracker.current_jobs(), (std::vector<long>{10, 20}));
  tracker.process_ended(kT0 + 4 * util::kSecond, 2, 10);
  EXPECT_EQ(tracker.current_jobs(), (std::vector<long>{20}));
}

TEST(SharedNode, MarksDistinguishStartStop) {
  std::vector<std::string> marks;
  SharedNodeTracker tracker(
      [&](util::SimTime, const std::string& m) { marks.push_back(m); });
  tracker.process_started(kT0, 1, 1);
  tracker.process_ended(kT0 + util::kSecond, 1, 1);
  EXPECT_EQ(marks, (std::vector<std::string>{"procstart", "procstop"}));
}

}  // namespace
}  // namespace tacc::core
