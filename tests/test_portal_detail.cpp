// Detail-page drill-downs: per-process view, pass/fail threshold report,
// and the group (project allocation) aggregation.
#include <gtest/gtest.h>

#include "pipeline/ingest.hpp"
#include "pipeline/minisim.hpp"
#include "portal/report.hpp"
#include "portal/views.hpp"
#include "workload/generator.hpp"

namespace tacc::portal {
namespace {

workload::JobSpec sample_job() {
  workload::JobSpec job;
  job.jobid = 555;
  job.user = "dana";
  job.uid = 10055;
  job.account = "TG-042";
  job.profile = "qchem";  // 2 procs x 8 threads per node
  job.exe = "qcprog.exe";
  job.nodes = 2;
  job.wayness = 2;
  job.start_time = util::make_time(2015, 12, 1);
  job.end_time = job.start_time + 2 * util::kHour;
  return job;
}

TEST(ProcessView, ShowsProcessesPerNode) {
  pipeline::MiniSimOptions opts;
  opts.samples = 2;
  const auto data = simulate_job(sample_job(), opts);
  const auto view = process_view(data);
  // 2 nodes x 2 ranks, with the executable name and thread count.
  EXPECT_NE(view.find("qcprog.exe"), std::string::npos);
  EXPECT_NE(view.find("c400-001"), std::string::npos);
  EXPECT_NE(view.find("c400-002"), std::string::npos);
  // qchem runs 8 threads per rank.
  EXPECT_NE(view.find("8"), std::string::npos);
  // Four data lines + header + separator.
  int lines = 0;
  for (const char c : view) lines += c == '\n';
  EXPECT_EQ(lines, 2 + 4);
}

TEST(ProcessView, HonorsLimit) {
  pipeline::MiniSimOptions opts;
  opts.samples = 2;
  auto job = sample_job();
  job.profile = "wrf";  // 16 procs per node
  job.exe = "wrf.exe";
  job.wayness = 16;
  const auto data = simulate_job(job, opts);
  const auto view = process_view(data, 5);
  EXPECT_NE(view.find("..."), std::string::npos);
}

TEST(ProcessView, EmptyWithoutPsBlocks) {
  pipeline::JobData data;
  const auto view = process_view(data);
  int lines = 0;
  for (const char c : view) lines += c == '\n';
  EXPECT_EQ(lines, 2);  // header + separator only
}

TEST(ThresholdReport, PassFailColumns) {
  db::Database database;
  auto& jobs = pipeline::create_jobs_table(database);
  workload::AccountingRecord acct;
  acct.jobid = 1;
  acct.user = "u";
  acct.exe = "x";
  acct.queue = "normal";
  acct.status = "COMPLETED";
  acct.nodes = 2;
  acct.start_time = 0;
  acct.end_time = util::kHour;
  pipeline::JobMetrics m;
  m.MetaDataRate = 500000.0;  // FAIL
  m.GigEBW = 0.01;            // PASS
  m.idle = 0.9;               // PASS
  m.catastrophe = 0.05;       // FAIL
  m.cpi = 1.0;                // PASS
  m.VecPercent = 0.4;         // PASS
  pipeline::ingest_job(jobs, acct, m, {});
  const auto report = threshold_report(jobs, 0);
  EXPECT_NE(report.find("metadata rate"), std::string::npos);
  EXPECT_NE(report.find("FAIL"), std::string::npos);
  EXPECT_NE(report.find("PASS"), std::string::npos);
  // largemem check is not applicable in the normal queue.
  EXPECT_EQ(report.find("largemem footprint"), std::string::npos);
  // MemUsage was NaN -> vectorization row still renders values.
  EXPECT_NE(report.find("vectorization"), std::string::npos);
}

TEST(ThresholdReport, LargememCheckOnlyInLargememQueue) {
  db::Database database;
  auto& jobs = pipeline::create_jobs_table(database);
  workload::AccountingRecord acct;
  acct.jobid = 2;
  acct.user = "u";
  acct.exe = "R";
  acct.queue = "largemem";
  acct.status = "COMPLETED";
  acct.nodes = 1;
  acct.start_time = 0;
  acct.end_time = util::kHour;
  pipeline::JobMetrics m;
  m.MemUsage = 10.0;  // of 1 TB: FAIL
  pipeline::ingest_job(jobs, acct, m, {});
  const auto report = threshold_report(jobs, 0);
  EXPECT_NE(report.find("largemem footprint"), std::string::npos);
  EXPECT_NE(report.find("FAIL"), std::string::npos);
  // NaN metrics render as n/a, never as PASS/FAIL.
  EXPECT_NE(report.find("n/a"), std::string::npos);
}

TEST(GroupReport, AggregatesByAccount) {
  db::Database database;
  auto& jobs = pipeline::create_jobs_table(database);
  auto add = [&](long id, const char* account, int nodes, double hours) {
    workload::AccountingRecord a;
    a.jobid = id;
    a.user = "u";
    a.account = account;
    a.exe = "x";
    a.queue = "normal";
    a.status = "COMPLETED";
    a.nodes = nodes;
    a.start_time = 0;
    a.end_time = util::from_seconds(hours * 3600);
    pipeline::ingest_job(jobs, a, pipeline::JobMetrics{}, {});
  };
  add(1, "TG-001", 4, 10.0);  // 40 node-hours
  add(2, "TG-001", 2, 5.0);   // 10
  add(3, "TG-002", 1, 2.0);   // 2
  const auto report = group_report(jobs, jobs.select({}));
  EXPECT_LT(report.find("TG-001"), report.find("TG-002"));
  EXPECT_NE(report.find("50"), std::string::npos);
}

TEST(GroupReport, PopulationCarriesAccounts) {
  workload::PopulationConfig config;
  config.num_jobs = 50;
  config.storm_jobs = 5;
  const auto jobs = workload::generate_population(config);
  for (const auto& j : jobs) {
    EXPECT_FALSE(j.account.empty());
    EXPECT_TRUE(j.account.rfind("TG-", 0) == 0);
  }
}

}  // namespace
}  // namespace tacc::portal
