// Concurrency contract of the sharded time-series store and the parallel
// archive -> tsdb ingest path: N writers over M shards with interleaved
// queries, results compared against a serial store, plus the determinism
// guarantee (parallel ingest == serial ingest, byte for byte) and the
// num_points()-during-ingest regression. This file is the dedicated
// ThreadSanitizer workload (see -DTACC_TSAN=ON).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/ingest.hpp"
#include "transport/archive.hpp"
#include "tsdb/store.hpp"
#include "util/thread_pool.hpp"

namespace tacc::tsdb {
namespace {

constexpr util::SimTime kT0 = 1451606400LL * util::kSecond;

/// Exact equality of query outputs (tags, times, and bit-equal values).
void expect_identical(const std::vector<SeriesResult>& a,
                      const std::vector<SeriesResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].group_tags, b[i].group_tags);
    ASSERT_EQ(a[i].points.size(), b[i].points.size());
    for (std::size_t p = 0; p < a[i].points.size(); ++p) {
      EXPECT_EQ(a[i].points[p].time, b[i].points[p].time);
      // EXPECT_EQ, not EXPECT_DOUBLE_EQ: determinism means bit-identical.
      EXPECT_EQ(a[i].points[p].value, b[i].points[p].value);
    }
  }
}

std::vector<Query> probe_queries() {
  std::vector<Query> qs;
  Query sum;
  sum.metric = "m";
  sum.aggregator = Aggregator::Sum;
  qs.push_back(sum);
  Query grouped = sum;
  grouped.group_by = {"host"};
  grouped.downsample = 5 * util::kMinute;
  qs.push_back(grouped);
  Query rated = sum;
  rated.rate = true;
  rated.aggregator = Aggregator::Avg;
  qs.push_back(rated);
  return qs;
}

TEST(TsdbConcurrent, ParallelWritersMatchSerialStore) {
  constexpr int kWriters = 8;
  constexpr int kSeriesPerWriter = 4;
  constexpr int kPoints = 500;

  Store sharded(StoreOptions{4});
  Store serial(StoreOptions{1});

  // Each writer owns its host tag, so series are disjoint; batches land in
  // whichever shard the series hashes to.
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&sharded, w] {
      for (int s = 0; s < kSeriesPerWriter; ++s) {
        const TagSet tags = {{"host", "h" + std::to_string(w)},
                             {"dev", "d" + std::to_string(s)}};
        std::vector<DataPoint> run;
        run.reserve(kPoints);
        for (int p = 0; p < kPoints; ++p) {
          run.push_back({kT0 + p * util::kMinute,
                         static_cast<double>(w * 1000 + s * 100 + p)});
        }
        sharded.put_batch("m", tags, run);
      }
    });
  }
  for (auto& t : writers) t.join();

  // The same data, serially, point by point, into a one-shard store.
  for (int w = 0; w < kWriters; ++w) {
    for (int s = 0; s < kSeriesPerWriter; ++s) {
      const TagSet tags = {{"host", "h" + std::to_string(w)},
                           {"dev", "d" + std::to_string(s)}};
      for (int p = 0; p < kPoints; ++p) {
        serial.put("m", tags, kT0 + p * util::kMinute,
                   static_cast<double>(w * 1000 + s * 100 + p));
      }
    }
  }

  EXPECT_EQ(sharded.num_series(), serial.num_series());
  EXPECT_EQ(sharded.num_points(), serial.num_points());
  for (const auto& q : probe_queries()) {
    expect_identical(sharded.query(q), serial.query(q));
  }
}

TEST(TsdbConcurrent, InterleavedQueriesSeeConsistentSeries) {
  constexpr int kWriters = 4;
  constexpr int kBatches = 50;
  constexpr int kBatchPoints = 40;

  Store store(StoreOptions{8});
  std::atomic<bool> done{false};
  std::atomic<std::size_t> query_failures{0};

  std::thread reader([&] {
    Query q;
    q.metric = "m";
    q.group_by = {"host"};
    std::size_t last_points = 0;
    while (!done.load(std::memory_order_acquire)) {
      // Every observed series must be internally consistent: per-writer
      // values are monotone in time, and num_points never goes backwards.
      const std::size_t now_points = store.num_points();
      if (now_points < last_points) query_failures.fetch_add(1);
      last_points = now_points;
      for (const auto& r : store.query(q)) {
        for (std::size_t p = 1; p < r.points.size(); ++p) {
          if (r.points[p].value < r.points[p - 1].value) {
            query_failures.fetch_add(1);
          }
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      const TagSet tags = {{"host", "h" + std::to_string(w)}};
      int seq = 0;
      for (int b = 0; b < kBatches; ++b) {
        std::vector<DataPoint> run;
        run.reserve(kBatchPoints);
        for (int p = 0; p < kBatchPoints; ++p, ++seq) {
          run.push_back({kT0 + seq * util::kSecond,
                         static_cast<double>(seq)});
        }
        store.put_batch("m", tags, run);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(query_failures.load(), 0u);
  EXPECT_EQ(store.num_points(),
            static_cast<std::size_t>(kWriters) * kBatches * kBatchPoints);
  EXPECT_EQ(store.num_series(), static_cast<std::size_t>(kWriters));
}

// Regression for the seed store's plain size_t counter: num_points() must
// be safe (and monotone) while ingest is in flight.
TEST(TsdbConcurrent, NumPointsIsSafeDuringConcurrentIngest) {
  constexpr int kWriters = 8;
  constexpr int kPutsPerWriter = 2000;

  Store store(StoreOptions{4});
  std::atomic<bool> done{false};
  std::atomic<bool> regressed{false};
  std::thread watcher([&] {
    std::size_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t now = store.num_points();
      if (now < last) regressed.store(true);
      last = now;
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      const TagSet tags = {{"host", "h" + std::to_string(w)}};
      for (int p = 0; p < kPutsPerWriter; ++p) {
        store.put("m", tags, kT0 + p * util::kSecond, 1.0);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  watcher.join();

  EXPECT_FALSE(regressed.load());
  EXPECT_EQ(store.num_points(),
            static_cast<std::size_t>(kWriters) * kPutsPerWriter);
}

TEST(TsdbConcurrent, PutBatchAndPutBatchesMatchPut) {
  const auto fill_points = [](int s) {
    std::vector<DataPoint> run;
    for (int p = 0; p < 64; ++p) {
      // Deliberately out of order within the run.
      run.push_back({kT0 + ((p * 7) % 64) * util::kMinute,
                     static_cast<double>(s * 100 + (p * 7) % 64)});
    }
    return run;
  };

  Store via_put;
  Store via_batch;
  Store via_batches;
  std::vector<SeriesBatch> staged;
  for (int s = 0; s < 6; ++s) {
    const TagSet tags = {{"host", "h" + std::to_string(s % 3)},
                         {"dev", "d" + std::to_string(s)}};
    const auto run = fill_points(s);
    for (const auto& p : run) via_put.put("m", tags, p.time, p.value);
    via_batch.put_batch("m", tags, run);
    staged.push_back({"m", tags, run});
  }
  via_batches.put_batches(staged);

  for (const auto& q : probe_queries()) {
    expect_identical(via_put.query(q), via_batch.query(q));
    expect_identical(via_put.query(q), via_batches.query(q));
  }
}

TEST(TsdbConcurrent, QueryResultsInvariantUnderShardCount) {
  const auto fill = [](Store& store) {
    for (int h = 0; h < 12; ++h) {
      const TagSet tags = {{"host", "h" + std::to_string(h)},
                           {"user", h % 3 == 0 ? "storm" : "victim"}};
      std::vector<DataPoint> run;
      for (int p = 0; p < 100; ++p) {
        run.push_back({kT0 + p * util::kMinute,
                       static_cast<double>(h) + p * 0.1});
      }
      store.put_batch("m", tags, run);
    }
  };
  Store one(StoreOptions{1});
  Store many(StoreOptions{64});
  fill(one);
  fill(many);
  EXPECT_EQ(one.num_shards(), 1u);
  EXPECT_EQ(many.num_shards(), 64u);
  for (auto q : probe_queries()) {
    q.group_by = {"user"};
    expect_identical(one.query(q), many.query(q));
  }
}

TEST(TsdbConcurrent, ParallelQueryMatchesSerialQuery) {
  Store store(StoreOptions{16});
  for (int h = 0; h < 16; ++h) {
    const TagSet tags = {{"host", "h" + std::to_string(h)}};
    std::vector<DataPoint> run;
    for (int p = 0; p < 200; ++p) {
      run.push_back({kT0 + p * util::kMinute, h * 0.25 + p * 1.5});
    }
    store.put_batch("m", tags, run);
  }
  util::ThreadPool pool(4);
  for (auto q : probe_queries()) {
    q.group_by = {"host"};
    q.downsample = 10 * util::kMinute;
    expect_identical(store.query(q), store.query(q, pool));
  }
}

// Acceptance workload for the compressed tier: queries interleaved with
// ingest AND concurrent sealing (auto-seal from the writers plus explicit
// seal_all() from a dedicated sealer thread). Every observed series must
// stay internally consistent — per-writer values are monotone in time no
// matter how points migrate from head buffers into sealed blocks.
TEST(TsdbConcurrent, QueriesDuringIngestAndConcurrentSealing) {
  constexpr int kWriters = 4;
  constexpr int kBatches = 40;
  constexpr int kBatchPoints = 50;

  StoreOptions opts;
  opts.shards = 8;
  opts.block_points = 64;  // writers cross seal boundaries constantly
  Store store(opts);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> failures{0};

  std::thread sealer([&] {
    while (!done.load(std::memory_order_acquire)) {
      store.seal_all();
    }
    store.seal_all();
  });

  std::thread reader([&] {
    Query plain;
    plain.metric = "m";
    plain.group_by = {"host"};
    Query coarse = plain;
    coarse.downsample = util::kHour;  // buckets cover whole blocks: rollups
    coarse.downsample_aggregator = Aggregator::Max;
    while (!done.load(std::memory_order_acquire)) {
      for (const auto& r : store.query(plain)) {
        for (std::size_t p = 1; p < r.points.size(); ++p) {
          if (r.points[p].value < r.points[p - 1].value) {
            failures.fetch_add(1);
          }
        }
      }
      for (const auto& r : store.query(coarse)) {
        for (std::size_t p = 1; p < r.points.size(); ++p) {
          if (r.points[p].value < r.points[p - 1].value) {
            failures.fetch_add(1);
          }
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      const TagSet tags = {{"host", "h" + std::to_string(w)}};
      int seq = 0;
      for (int b = 0; b < kBatches; ++b) {
        std::vector<DataPoint> run;
        run.reserve(kBatchPoints);
        for (int p = 0; p < kBatchPoints; ++p, ++seq) {
          run.push_back({kT0 + seq * util::kSecond,
                         static_cast<double>(seq)});
        }
        store.put_batch("m", tags, run);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  sealer.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(store.num_points(),
            static_cast<std::size_t>(kWriters) * kBatches * kBatchPoints);
  // Everything sealed; the sealed tier holds every point, compressed.
  const auto stats = store.storage_stats();
  EXPECT_EQ(stats.head_points, 0u);
  EXPECT_EQ(stats.sealed_points, store.num_points());

  // After the dust settles: identical to a never-sealed serial store.
  Store flat(StoreOptions{.shards = 1, .block_points = 0});
  for (int w = 0; w < kWriters; ++w) {
    const TagSet tags = {{"host", "h" + std::to_string(w)}};
    for (int seq = 0; seq < kBatches * kBatchPoints; ++seq) {
      flat.put("m", tags, kT0 + seq * util::kSecond,
               static_cast<double>(seq));
    }
  }
  for (auto q : probe_queries()) {
    q.group_by = {"host"};
    expect_identical(flat.query(q), store.query(q));
  }
}

/// Fills a small synthetic raw archive: `hosts` hosts, two schema types,
/// a few devices each, `records` records at one-minute cadence.
void fill_archive(transport::RawArchive& archive, int hosts, int records) {
  const std::vector<collect::Schema> schemas = {
      collect::Schema("cpu", {{"user", true, 64, "", 1.0},
                              {"sys", true, 64, "", 1.0}}),
      collect::Schema("mdc", {{"reqs", true, 64, "", 1.0},
                              {"wait", true, 64, "us", 1.0}}),
  };
  for (int h = 0; h < hosts; ++h) {
    const std::string host = "c400-" + std::to_string(h);
    archive.add_header(host, "hsw", schemas);
    for (int r = 0; r < records; ++r) {
      collect::Record rec;
      rec.time = kT0 + r * util::kMinute;
      for (int cpu = 0; cpu < 2; ++cpu) {
        rec.blocks.push_back(
            {"cpu",
             std::to_string(cpu),
             {static_cast<std::uint64_t>(r * 100 + cpu),
              static_cast<std::uint64_t>(r * 10 + cpu)}});
      }
      rec.blocks.push_back(
          {"mdc",
           "work-MDT0000",
           {static_cast<std::uint64_t>(r * 50 + h),
            static_cast<std::uint64_t>(r * 7)}});
      const util::SimTime t = rec.time;
      archive.append(host, std::move(rec), t);
    }
  }
}

// The acceptance-criteria determinism proof: fanning the archive load out
// over a pool produces a store whose query results are byte-identical to
// the serially-loaded one.
TEST(TsdbConcurrent, ParallelArchiveIngestIsDeterministic) {
  transport::RawArchive archive;
  fill_archive(archive, 9, 30);

  Store serial_store(StoreOptions{16});
  const auto serial_stats =
      pipeline::ingest_archive_tsdb(serial_store, archive, nullptr);

  util::ThreadPool pool(8);
  pipeline::TsdbIngestOptions opts;
  opts.batch_points = 128;  // force several mid-host flushes
  Store par_store(StoreOptions{16});
  const auto par_stats =
      pipeline::ingest_archive_tsdb(par_store, archive, &pool, opts);

  EXPECT_EQ(serial_stats.hosts, 9u);
  EXPECT_EQ(par_stats.hosts, serial_stats.hosts);
  EXPECT_EQ(par_stats.series, serial_stats.series);
  EXPECT_EQ(par_stats.points, serial_stats.points);
  EXPECT_EQ(par_store.num_series(), serial_store.num_series());
  EXPECT_EQ(par_store.num_points(), serial_store.num_points());

  // series per host: 2 cpu devices x 2 events + 1 mdc device x 2 events.
  EXPECT_EQ(serial_store.num_series(), 9u * 6u);

  std::vector<Query> qs;
  Query by_host;
  by_host.metric = "taccstats.cpu.user";
  by_host.group_by = {"host"};
  qs.push_back(by_host);
  Query by_device = by_host;
  by_device.metric = "taccstats.cpu.sys";
  by_device.group_by = {"device"};
  by_device.downsample = 5 * util::kMinute;
  qs.push_back(by_device);
  Query rated;
  rated.metric = "taccstats.mdc.reqs";
  rated.rate = true;
  rated.aggregator = Aggregator::Avg;
  qs.push_back(rated);
  for (const auto& q : qs) {
    const auto a = serial_store.query(q);
    const auto b = par_store.query(q);
    ASSERT_FALSE(a.empty());
    expect_identical(a, b);
  }
}

}  // namespace
}  // namespace tacc::tsdb
