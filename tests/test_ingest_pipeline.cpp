// The SIMD + arena ingest pipeline: Arena and RingQueue unit contracts,
// equivalence of the view-based record parser against a verbatim copy of
// the legacy parser (results, error messages, and partial-progress state,
// across every scan mode), zero-allocation steady state, and store-level
// determinism — archive vs text, inline vs staged put threads, any SIMD
// mode: byte-identical query results.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "collect/rawfile.hpp"
#include "collect/rawview.hpp"
#include "pipeline/ingest.hpp"
#include "pipeline/pipeline_metrics.hpp"
#include "transport/archive.hpp"
#include "tsdb/store.hpp"
#include "util/arena.hpp"
#include "util/ring_queue.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace tacc {
namespace {

using collect::HostLog;
using collect::RawBlock;
using collect::Record;
using collect::Schema;

// ---------------------------------------------------------------- Arena --

TEST(Arena, AlignedAllocationAndStats) {
  util::Arena arena(256);
  const auto bytes = arena.alloc_array<std::uint8_t>(3);
  const auto words = arena.alloc_array<std::uint64_t>(4);
  ASSERT_EQ(bytes.size(), 3u);
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words.data()) %
                alignof(std::uint64_t),
            0u);
  words[0] = 1;
  words[3] = 4;  // writable storage
  EXPECT_EQ(arena.stats().chunks, 1u);
  EXPECT_GE(arena.stats().bytes_used, 3u + 32u);
  EXPECT_TRUE(arena.alloc_array<std::uint64_t>(0).empty());
}

TEST(Arena, ResetReusesSlabsWithoutHeapAllocation) {
  util::Arena arena(128);
  for (int i = 0; i < 8; ++i) arena.alloc_array<std::uint64_t>(10);
  const auto grown = arena.stats().chunk_allocs;
  EXPECT_GE(arena.stats().chunks, 1u);
  for (int round = 0; round < 50; ++round) {
    arena.reset();
    for (int i = 0; i < 8; ++i) arena.alloc_array<std::uint64_t>(10);
    // Same shape after reset: the retained slabs absorb everything.
    EXPECT_EQ(arena.stats().chunk_allocs, grown) << "round " << round;
  }
}

TEST(Arena, OversizedRequestGetsItsOwnSlab) {
  util::Arena arena(64);
  const auto big = arena.alloc_array<std::uint64_t>(1000);  // ~8 KB > slab
  ASSERT_EQ(big.size(), 1000u);
  big[999] = 7;
  const auto small = arena.alloc_array<std::uint64_t>(2);
  small[0] = 1;
  EXPECT_GE(arena.stats().bytes_reserved, 8000u);
  // Reset and replay: both fit in retained slabs.
  const auto grown = arena.stats().chunk_allocs;
  arena.reset();
  arena.alloc_array<std::uint64_t>(1000);
  arena.alloc_array<std::uint64_t>(2);
  EXPECT_EQ(arena.stats().chunk_allocs, grown);
}

TEST(Arena, MoveLeavesSourceDetached) {
  // Regression: defaulted moves used to copy top_/end_ while moving the
  // slabs away, so an allocation from the moved-from arena aliased the
  // destination's live storage.
  util::Arena src(128);
  const auto kept = src.alloc_array<std::uint64_t>(4);
  kept[0] = 42;
  util::Arena dst(std::move(src));
  EXPECT_EQ(dst.stats().chunks, 1u);
  EXPECT_EQ(src.stats().chunks, 0u);  // source owns nothing post-move
  const auto fresh = src.alloc_array<std::uint64_t>(4);  // usable, detached
  fresh[0] = 7;
  EXPECT_EQ(kept[0], 42u);  // dst's storage untouched by the source write
  src = std::move(dst);     // move-assign: same contract
  EXPECT_EQ(dst.stats().chunks, 0u);
  const auto other = dst.alloc_array<std::uint64_t>(4);
  other[0] = 9;
  EXPECT_EQ(kept[0], 42u);
}

// ------------------------------------------------------------ RingQueue --

TEST(RingQueue, FifoAndCloseSemantics) {
  util::RingQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.try_push(3));
  EXPECT_TRUE(q.try_push(4));
  EXPECT_TRUE(q.try_push(5));
  EXPECT_FALSE(q.try_push(6));  // full
  q.close();
  // Closed but not drained: pop still yields everything, in order.
  for (const int want : {2, 3, 4, 5}) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, want);
  }
  EXPECT_FALSE(q.pop(v));  // closed and drained
  EXPECT_FALSE(q.try_pop(v));
}

TEST(RingQueue, CapacityRoundsUpToPowerOfTwo) {
  util::RingQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  util::RingQueue<int> q1(1);
  EXPECT_EQ(q1.capacity(), 2u);
}

TEST(RingQueue, SpscThreadsDeliverEverythingInOrder) {
  // Tiny capacity forces constant wrap-around and blocking on both sides;
  // the TSan job proves the memory-order discipline on this exact test.
  util::RingQueue<std::uint64_t> q(2);
  constexpr std::uint64_t kN = 20000;
  std::vector<std::uint64_t> got;
  got.reserve(kN);
  std::thread consumer([&] {
    std::uint64_t v;
    while (q.pop(v)) got.push_back(v);
  });
  for (std::uint64_t i = 0; i < kN; ++i) q.push(std::uint64_t{i});
  q.close();
  consumer.join();
  ASSERT_EQ(got.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(got[i], i);
}

TEST(RingQueue, CloseRaceNeverDropsFinalItem) {
  // Regression: pop() once consumed the final item inside its
  // closed-check condition, looped, and reported the queue drained —
  // silently dropping the value. Pin the contract under the racy
  // scenario (consumer already blocked in pop() on an empty queue,
  // producer pushes the last item and closes immediately): the final
  // item must always be delivered. The vulnerable window was a few
  // instructions wide, so this is a probabilistic repro; the structural
  // guarantee is that pop() has no path that consumes without returning.
  for (int round = 0; round < 1000; ++round) {
    util::RingQueue<int> q(2);
    std::atomic<bool> waiting{false};
    std::thread consumer([&] {
      int v = -1;
      waiting.store(true, std::memory_order_release);
      const bool got = q.pop(v);
      EXPECT_TRUE(got) << "final item dropped at close, round " << round;
      if (got) EXPECT_EQ(v, round);
      EXPECT_FALSE(q.pop(v));
    });
    while (!waiting.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    q.push(int{round});
    q.close();
    consumer.join();
    if (::testing::Test::HasFailure()) break;
  }
}

// ----------------------------------------------- parser equivalence -----

/// Verbatim copy of the pre-pipeline HostLog::parse_records (the
/// split_lines + split_ws implementation) — the behavioral reference the
/// view parser must match bit for bit.
void legacy_parse_records(HostLog& log, std::string_view body) {
  using util::split_ws;
  Record* current = nullptr;
  for (const auto line : util::split_lines(body)) {
    if (line.empty()) continue;
    if (line[0] >= '0' && line[0] <= '9') {
      const auto fields = split_ws(line);
      if (fields.empty()) throw std::invalid_argument("empty record line");
      const auto secs = util::parse_i64(fields[0]);
      if (!secs) {
        throw std::invalid_argument("bad timestamp: " + std::string(line));
      }
      Record rec;
      rec.time = *secs * util::kSecond;
      if (fields.size() > 1 && fields[1] != "-") {
        for (const auto j : util::split(fields[1], ',')) {
          const auto id = util::parse_i64(j);
          if (!id) {
            throw std::invalid_argument("bad job id: " + std::string(line));
          }
          rec.jobids.push_back(static_cast<long>(*id));
        }
      }
      if (fields.size() > 2) rec.mark = std::string(fields[2]);
      log.records.push_back(std::move(rec));
      current = &log.records.back();
      continue;
    }
    if (current == nullptr) {
      throw std::invalid_argument("data row before any timestamp line");
    }
    const auto fields = split_ws(line);
    if (fields.size() < 2) {
      throw std::invalid_argument("short data row: " + std::string(line));
    }
    RawBlock block;
    block.type = std::string(fields[0]);
    block.device = fields[1] == "-" ? std::string{} : std::string(fields[1]);
    const Schema* schema = log.schema_for(block.type);
    if (schema == nullptr) {
      throw std::invalid_argument("data row with unknown type: " +
                                  block.type);
    }
    if (fields.size() - 2 != schema->size()) {
      throw std::invalid_argument("data row arity mismatch for type " +
                                  block.type);
    }
    block.values.reserve(fields.size() - 2);
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const auto v = util::parse_u64(fields[i]);
      if (!v) {
        throw std::invalid_argument("bad counter value: " +
                                    std::string(fields[i]));
      }
      block.values.push_back(*v);
    }
    current->blocks.push_back(std::move(block));
  }
}

/// Materializing sink mirroring HostLog::parse_records' wrapper, so the
/// test can force a specific scan mode.
struct MaterializeSink {
  std::vector<Record>& records;
  void record(const collect::RecordView& r) {
    Record rec;
    rec.time = r.time;
    rec.jobids.assign(r.jobids.begin(), r.jobids.end());
    rec.mark = std::string(r.mark);
    records.push_back(std::move(rec));
  }
  void block(const collect::RawBlockView& b) {
    RawBlock blk;
    blk.type = std::string(b.type);
    blk.device = std::string(b.device);
    blk.values.assign(b.values.begin(), b.values.end());
    records.back().blocks.push_back(std::move(blk));
  }
};

HostLog schema_fixture() {
  HostLog log;
  log.hostname = "c401-101";
  log.arch = "hsw";
  log.schemas = {
      Schema("cpu", {{"user", true, 64, "jiffies", 1.0},
                     {"sys", true, 64, "jiffies", 1.0},
                     {"idle", true, 64, "jiffies", 1.0}}),
      Schema("mem", {{"MemUsed", false, 64, "KB", 1.0}}),
      Schema("llite", {{"read_bytes", true, 64, "B", 1.0},
                       {"write_bytes", true, 64, "B", 1.0}}),
  };
  return log;
}

struct ParseOutcome {
  bool ok = false;
  std::string error;
  std::vector<Record> records;

  bool operator==(const ParseOutcome&) const = default;
};

ParseOutcome run_legacy(const HostLog& schemas, std::string_view body) {
  HostLog log = schemas;
  ParseOutcome out;
  try {
    legacy_parse_records(log, body);
    out.ok = true;
  } catch (const std::invalid_argument& e) {
    out.error = e.what();
  }
  out.records = std::move(log.records);
  return out;
}

ParseOutcome run_view(const HostLog& schemas, std::string_view body,
                      util::ScanMode mode) {
  collect::RecordViewParser parser(
      collect::RecordViewParser::Options{mode, 512});
  ParseOutcome out;
  MaterializeSink sink{out.records};
  try {
    parser.parse_body(schemas, body, sink);
    out.ok = true;
  } catch (const std::invalid_argument& e) {
    out.error = e.what();
  }
  return out;
}

ParseOutcome run_wrapper(const HostLog& schemas, std::string_view body) {
  HostLog log = schemas;
  ParseOutcome out;
  try {
    log.parse_records(body);
    out.ok = true;
  } catch (const std::invalid_argument& e) {
    out.error = e.what();
  }
  out.records = std::move(log.records);
  return out;
}

std::vector<util::ScanMode> parser_modes() {
  std::vector<util::ScanMode> modes = {util::ScanMode::Scalar};
  const util::ScanMode best = util::detected_scan_mode();
  if (best != util::ScanMode::Scalar) modes.push_back(best);
  return modes;
}

void expect_equivalent(const HostLog& schemas, const std::string& body) {
  const ParseOutcome want = run_legacy(schemas, body);
  EXPECT_EQ(run_wrapper(schemas, body), want) << "wrapper on: " << body;
  for (const util::ScanMode mode : parser_modes()) {
    EXPECT_EQ(run_view(schemas, body, mode), want)
        << util::scan_mode_name(mode) << " on: " << body;
  }
}

TEST(RecordViewParser, ErrorMessagesAndPartialStateMatchLegacy) {
  const HostLog schemas = schema_fixture();
  const std::vector<std::string> cases = {
      // valid shapes
      "1443657600 1001 begin\ncpu 0 1 2 3\ncpu 1 4 5 6\nmem - 77\n",
      "1443657600 -\nllite work 10 20\n",
      "1443657600 1001,1002\ncpu 0 1 2 3\n",
      "1443657600\n",              // bare timestamp, no job list
      "1443657600 1001 end extra ignored\n",  // trailing fields ignored
      "  \t\n1443657600 -\n",      // whitespace-only line first
      "1443657600 -\n\n\ncpu 0 1 2 3\n",  // empty lines inside
      "1443657600 -\ncpu\t0\t1 2\t3\n",   // tab delimiters
      "1443657600 -\ncpu 0 1 2 3",        // unterminated final row
      // malformed: every legacy error path
      "cpu 0 1 2 3\n",             // data row before any timestamp line
      "1443x 1001\n",              // bad timestamp
      "1443657600 12a4\n",         // bad job id
      "1443657600 1001,\n",        // trailing comma -> empty job id
      "1443657600 -\ncpu\n",       // short data row
      "1443657600 -\ngpu 0 1\n",   // unknown type
      "1443657600 -\ncpu 0 1 2\n", // arity mismatch (3 expected)
      "1443657600 -\ncpu 0 1 2 x\n",            // bad counter value
      "1443657600 -\ncpu 0 1 2 -3\n",           // negative counter
      "1443657600 -\ncpu 0 1 2 18446744073709551616\n",  // u64 overflow
      // partial progress: one good record+row, then a bad row
      "1443657600 1001\ncpu 0 1 2 3\n1443658200 1001\nmem - 5\nbad row x\n",
  };
  for (const auto& body : cases) expect_equivalent(schemas, body);
}

TEST(RecordViewParser, PropertyMatchesLegacyOnSeededRandomBodies) {
  const HostLog schemas = schema_fixture();
  util::Rng rng(2024);
  const char* types[] = {"cpu", "mem", "llite", "gpu"};  // gpu = unknown
  for (int iter = 0; iter < 250; ++iter) {
    std::string body;
    const int lines = static_cast<int>(rng.uniform_int(0, 25));
    for (int l = 0; l < lines; ++l) {
      const auto kind = rng.uniform_int(0, 9);
      if (kind < 3) {  // record line
        body += std::to_string(1443657600 + rng.uniform_int(0, 86400));
        if (rng.uniform_int(0, 3) != 0) {
          body += ' ';
          if (rng.uniform_int(0, 4) == 0) {
            body += '-';
          } else {
            const int njobs = static_cast<int>(rng.uniform_int(1, 3));
            for (int j = 0; j < njobs; ++j) {
              if (j) body += ',';
              if (rng.uniform_int(0, 19) == 0) body += 'x';  // bad id
              body += std::to_string(rng.uniform_int(1, 99999));
            }
          }
          if (rng.uniform_int(0, 2) == 0) {
            body += rng.uniform_int(0, 1) ? " begin" : " end";
          }
        }
        body += '\n';
      } else if (kind < 9) {  // data row
        const auto& type = types[rng.uniform_int(0, 3)];
        body += type;
        body += rng.uniform_int(0, 3) ? " " : "\t";
        if (rng.uniform_int(0, 4) == 0) {
          body += '-';
        } else {
          body += std::to_string(rng.uniform_int(0, 15));
        }
        // Sometimes the wrong arity on purpose.
        const int nvals = static_cast<int>(rng.uniform_int(0, 4));
        for (int v = 0; v < nvals; ++v) {
          body.append(static_cast<std::size_t>(rng.uniform_int(1, 2)), ' ');
          if (rng.uniform_int(0, 24) == 0) {
            body += "9q";  // bad value
          } else {
            body += std::to_string(
                static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)) *
                static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20)));
          }
        }
        body += '\n';
      } else {  // empty line
        body += '\n';
      }
    }
    expect_equivalent(schemas, body);
  }
}

TEST(RecordViewParser, SteadyStateParsesWithZeroHeapGrowth) {
  const HostLog schemas = schema_fixture();
  std::string body;
  for (int r = 0; r < 50; ++r) {
    body += std::to_string(1443657600 + r * 600) + " 1001,1002 begin\n";
    for (int c = 0; c < 8; ++c) {
      body += "cpu " + std::to_string(c) + " 11 22 33\n";
    }
    body += "mem - 987654\nllite work 123 456\n";
  }
  collect::RecordViewParser parser;
  std::vector<Record> sink_records;
  MaterializeSink sink{sink_records};
  const auto first = parser.parse_body(schemas, body, sink);
  EXPECT_EQ(first.records, 50u);
  // Second body of the same shape through the same parser: the arena and
  // the token scratch are warm — zero heap allocations from the parse
  // stage itself (the acceptance criterion PipelineMetrics reports).
  sink_records.clear();
  const auto second = parser.parse_body(schemas, body, sink);
  EXPECT_EQ(second.records, 50u);
  EXPECT_EQ(second.arena_resizes, 0u);
  EXPECT_EQ(second.allocations, 0u);
}

TEST(RecordViewParser, FullParseMatchesLegacyBytesAcrossModes) {
  // Round-trip: parse a serialized log in every mode, re-serialize, and
  // the bytes must be identical (mode can never leak into archive bytes).
  HostLog log = schema_fixture();
  util::Rng rng(7);
  for (int r = 0; r < 40; ++r) {
    Record rec;
    rec.time = (1443657600 + r * 600) * util::kSecond;
    if (r % 3) rec.jobids = {1000 + r, 2000 + r};
    if (r % 5 == 0) rec.mark = "begin";
    for (int c = 0; c < 4; ++c) {
      rec.blocks.push_back(
          {"cpu", std::to_string(c),
           {static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)),
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)),
            static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30))}});
    }
    rec.blocks.push_back({"mem", "", {static_cast<std::uint64_t>(r)}});
    log.records.push_back(std::move(rec));
  }
  const std::string text = log.serialize();
  const HostLog auto_parsed = HostLog::parse(text);
  EXPECT_EQ(auto_parsed.serialize(), text);
  HostLog header;
  const std::size_t body_off = header.parse_header(text);
  for (const util::ScanMode mode : parser_modes()) {
    const auto out = run_view(header, text.substr(body_off), mode);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.records, auto_parsed.records)
        << util::scan_mode_name(mode);
  }
}

// ----------------------------------------------- schema index -----------

TEST(HostLogSchemaIndex, IndexedAndFallbackLookupsAgree) {
  HostLog log = schema_fixture();
  // Manually-built log: no index yet, linear fallback.
  EXPECT_EQ(log.schema_for("mem")->type(), "mem");
  EXPECT_EQ(log.schema_for("gpu"), nullptr);
  log.reindex_schemas();
  EXPECT_EQ(log.schema_for("cpu")->type(), "cpu");
  EXPECT_EQ(log.schema_for("llite")->type(), "llite");
  EXPECT_EQ(log.schema_for("gpu"), nullptr);
  // Appending a schema stales the index (size mismatch): lookups must
  // still be correct via the fallback, including for the new type.
  log.schemas.push_back(Schema("ib", {{"rx_bytes", true, 64, "B", 1.0}}));
  EXPECT_EQ(log.schema_for("ib")->type(), "ib");
  EXPECT_EQ(log.schema_for("cpu")->type(), "cpu");
  log.reindex_schemas();
  EXPECT_EQ(log.schema_for("ib")->type(), "ib");
}

// ----------------------------------------------- pipeline metrics -------

TEST(PipelineMetrics, AccumulateSnapshotResetFormat) {
  pipeline::PipelineMetrics m;
  m.add_bytes_read(100);
  m.add_bytes_read(23);
  m.add_lines(7);
  m.add_parse_time_ns(500);
  m.add_queue_wait_ns(9);
  const auto s = m.snapshot();
  EXPECT_EQ(s.bytes_read, 123u);
  EXPECT_EQ(s.lines, 7u);
  EXPECT_EQ(s.parse_time_ns, 500u);
  EXPECT_EQ(s.queue_wait_ns, 9u);
  EXPECT_EQ(s.points, 0u);
  const auto table = pipeline::format_pipeline_metrics(s);
  EXPECT_NE(table.find("bytes_read"), std::string::npos);
  EXPECT_NE(table.find("123"), std::string::npos);
  EXPECT_NE(table.find("arena_resizes"), std::string::npos);
  m.reset();
  EXPECT_EQ(m.snapshot().bytes_read, 0u);
}

// ----------------------------------------------- store determinism ------

/// Exact equality of query outputs (tags, times, and bit-equal values).
void expect_identical(const std::vector<tsdb::SeriesResult>& a,
                      const std::vector<tsdb::SeriesResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].group_tags, b[i].group_tags);
    ASSERT_EQ(a[i].points.size(), b[i].points.size());
    for (std::size_t p = 0; p < a[i].points.size(); ++p) {
      EXPECT_EQ(a[i].points[p].time, b[i].points[p].time);
      EXPECT_EQ(a[i].points[p].value, b[i].points[p].value);
    }
  }
}

HostLog populated_log(const std::string& host, int records) {
  HostLog log = schema_fixture();
  log.hostname = host;
  log.reindex_schemas();
  for (int r = 0; r < records; ++r) {
    Record rec;
    rec.time = (1443657600 + r * 600) * util::kSecond;
    rec.jobids = {4242};
    for (int c = 0; c < 4; ++c) {
      rec.blocks.push_back(
          {"cpu", std::to_string(c),
           {static_cast<std::uint64_t>(r * 100 + c),
            static_cast<std::uint64_t>(r * 10 + c),
            static_cast<std::uint64_t>(r * 3)}});
    }
    rec.blocks.push_back({"mem", "", {static_cast<std::uint64_t>(r * 1024)}});
    rec.blocks.push_back({"llite", "work",
                          {static_cast<std::uint64_t>(r * 7),
                           static_cast<std::uint64_t>(r * 11)}});
    log.records.push_back(std::move(rec));
  }
  return log;
}

transport::RawArchive& shared_archive() {
  static transport::RawArchive archive;
  static const bool filled = [] {
    for (int h = 0; h < 5; ++h) {
      const auto log = populated_log("c4-" + std::to_string(h), 40);
      archive.add_header(log.hostname, log.arch, log.schemas);
      for (const auto& rec : log.records) {
        archive.append(log.hostname, rec, rec.time);
      }
    }
    return true;
  }();
  (void)filled;
  return archive;
}

std::vector<tsdb::Query> probe_queries() {
  std::vector<tsdb::Query> qs;
  tsdb::Query by_host;
  by_host.metric = "taccstats.cpu.user";
  by_host.group_by = {"host"};
  qs.push_back(by_host);
  tsdb::Query by_device = by_host;
  by_device.metric = "taccstats.cpu.sys";
  by_device.group_by = {"device"};
  by_device.downsample = 5 * util::kMinute;
  qs.push_back(by_device);
  tsdb::Query rated;
  rated.metric = "taccstats.llite.read_bytes";
  rated.rate = true;
  rated.aggregator = tsdb::Aggregator::Avg;
  qs.push_back(rated);
  return qs;
}

TEST(IngestPipeline, StageThreadsProduceIdenticalStores) {
  auto& archive = shared_archive();
  pipeline::TsdbIngestOptions base;
  base.batch_points = 256;  // force several mid-host flushes

  tsdb::Store inline_store(tsdb::StoreOptions{8});
  const auto inline_stats =
      pipeline::ingest_archive_tsdb(inline_store, archive, nullptr, base);
  ASSERT_EQ(inline_stats.hosts, 5u);
  ASSERT_GT(inline_stats.points, 0u);

  for (const std::size_t threads : {1u, 3u}) {
    pipeline::TsdbIngestOptions staged = base;
    staged.stage_threads = threads;
    staged.queue_depth = 2;  // force producer blocking too
    tsdb::Store store(tsdb::StoreOptions{8});
    const auto stats =
        pipeline::ingest_archive_tsdb(store, archive, nullptr, staged);
    EXPECT_EQ(stats.series, inline_stats.series) << threads;
    EXPECT_EQ(stats.points, inline_stats.points) << threads;
    EXPECT_EQ(store.num_series(), inline_store.num_series());
    EXPECT_EQ(store.num_points(), inline_store.num_points());
    for (const auto& q : probe_queries()) {
      const auto a = inline_store.query(q);
      ASSERT_FALSE(a.empty());
      expect_identical(a, store.query(q));
    }
  }

  // And the pool path still matches (the PR 4 invariant, re-proven over
  // the resolver-based stage builder).
  util::ThreadPool pool(4);
  tsdb::Store pooled(tsdb::StoreOptions{8});
  const auto pooled_stats =
      pipeline::ingest_archive_tsdb(pooled, archive, &pool, base);
  EXPECT_EQ(pooled_stats.points, inline_stats.points);
  for (const auto& q : probe_queries()) {
    expect_identical(inline_store.query(q), pooled.query(q));
  }
}

TEST(IngestPipeline, TextIngestMatchesArchiveIngestAcrossModes) {
  const auto log = populated_log("c4-0", 40);
  transport::RawArchive archive;
  archive.add_header(log.hostname, log.arch, log.schemas);
  for (const auto& rec : log.records) {
    archive.append(log.hostname, rec, rec.time);
  }
  tsdb::Store from_archive(tsdb::StoreOptions{4});
  const auto archive_stats =
      pipeline::ingest_archive_tsdb(from_archive, archive, nullptr);

  const std::string text = log.serialize();
  struct Config {
    util::ScanMode scan;
    std::size_t stage_threads;
  };
  std::vector<Config> configs = {{util::ScanMode::Scalar, 0},
                                 {util::ScanMode::Auto, 0},
                                 {util::ScanMode::Auto, 2}};
  if (util::detected_scan_mode() == util::ScanMode::Avx2) {
    configs.push_back({util::ScanMode::Sse2, 1});
  }
  for (const auto& cfg : configs) {
    pipeline::TsdbIngestOptions opts;
    opts.scan = cfg.scan;
    opts.stage_threads = cfg.stage_threads;
    opts.batch_points = 200;
    tsdb::Store store(tsdb::StoreOptions{4});
    const auto stats = pipeline::ingest_text_tsdb(store, text, opts);
    EXPECT_EQ(stats.hosts, 1u);
    EXPECT_EQ(stats.series, archive_stats.series);
    EXPECT_EQ(stats.points, archive_stats.points);
    EXPECT_EQ(store.num_points(), from_archive.num_points());
    for (const auto& q : probe_queries()) {
      const auto a = from_archive.query(q);
      ASSERT_FALSE(a.empty());
      expect_identical(a, store.query(q));
    }
  }
}

TEST(IngestPipeline, TextIngestReportsZeroSteadyStateAllocations) {
  const auto log = populated_log("c4-9", 30);
  const std::string text = log.serialize();
  pipeline::PipelineMetrics metrics;
  pipeline::TsdbIngestOptions opts;
  opts.metrics = &metrics;
  {
    tsdb::Store warmup(tsdb::StoreOptions{2});
    pipeline::ingest_text_tsdb(warmup, text, opts);
  }
  // The text parser in ingest_text_tsdb is per-call, so its first records
  // size the arena; the rest of the call reuses those slabs — steady
  // state means arena growth stays O(1) w.r.t. record count.
  const auto first = metrics.snapshot();
  EXPECT_GT(first.records, 0u);
  EXPECT_GT(first.points, 0u);
  EXPECT_LE(first.arena_resizes, 1u);  // one slab covers every record
  metrics.reset();
  // A second ingest through a persistent parser is the true steady state:
  // proven at the parser level in SteadyStateParsesWithZeroHeapGrowth;
  // here we pin the pipeline-level report: lines/bytes/records accounted,
  // and the arena never grew past its first slab.
  tsdb::Store store(tsdb::StoreOptions{2});
  const auto stats = pipeline::ingest_text_tsdb(store, text, opts);
  const auto s = metrics.snapshot();
  EXPECT_EQ(s.bytes_read, text.size() - text.find("1443657600"));
  EXPECT_EQ(s.records, 30u);
  EXPECT_EQ(s.points, stats.points);
  EXPECT_LE(s.arena_resizes, 1u);
  EXPECT_GT(s.lines, 30u);
}

TEST(IngestPipeline, TextIngestPropagatesParseErrors) {
  tsdb::Store store(tsdb::StoreOptions{2});
  EXPECT_THROW(pipeline::ingest_text_tsdb(store, "no header"),
               std::invalid_argument);
  const std::string bad =
      "$tacc_stats 2.1\n$hostname h\n$arch x\n!cpu user,E\n"
      "1443657600 -\ncpu 0 1\ncpu 0 oops\n";
  tsdb::Store store2(tsdb::StoreOptions{2});
  try {
    pipeline::ingest_text_tsdb(store2, bad);
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "bad counter value: oops");
  }
}

}  // namespace
}  // namespace tacc
