// Parameterized full-pipeline sweep over every supported architecture and
// both hardware-threading configurations: detection, PMC programming,
// uncore access method, vector-width scaling, and metric availability must
// all adapt automatically (paper section III-B).
#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/metrics.hpp"
#include "pipeline/minisim.hpp"

namespace tacc::pipeline {
namespace {

struct SweepParam {
  simhw::Microarch uarch;
  bool hyperthreading;
};

class ArchPipelineSweep : public ::testing::TestWithParam<SweepParam> {};

workload::JobSpec sweep_job() {
  workload::JobSpec job;
  job.jobid = 4242;
  job.user = "sweep";
  job.profile = "fem_avx";
  job.exe = "ls-dyna";
  job.nodes = 2;
  job.wayness = 8;
  job.start_time = util::make_time(2016, 1, 5);
  job.end_time = job.start_time + util::kHour;
  job.vec_frac_eff = 0.5;
  return job;
}

TEST_P(ArchPipelineSweep, MetricsAdaptToArchitecture) {
  MiniSimOptions opts;
  opts.uarch = GetParam().uarch;
  opts.hyperthreading = GetParam().hyperthreading;
  opts.cores_per_socket = 4;
  opts.samples = 4;
  const auto data = simulate_job(sweep_job(), opts);
  const auto m = compute_metrics(data);
  const auto& spec = simhw::arch_spec(GetParam().uarch);

  // Core metrics present on every supported CPUID.
  ASSERT_FALSE(std::isnan(m.cpi));
  ASSERT_FALSE(std::isnan(m.flops));
  ASSERT_FALSE(std::isnan(m.VecPercent));
  EXPECT_NEAR(m.VecPercent, 0.5, 0.02);
  EXPECT_GT(m.flops, 0.1);
  EXPECT_NEAR(m.cpi, 1.0 / 1.5, 0.12);  // fem_avx ipc = 1.5

  // Vector width: a job with vec_frac 0.5 sustains
  // fp * (0.5 + 0.5*width) flops; SSE parts (width 2) therefore report
  // ~1.5/2.5 of the AVX parts' flops at the same instruction rate.
  const double width = spec.vector_width_doubles;
  const double flops_per_fp = 0.5 + 0.5 * width;
  // Normalize: node flops / (node instruction rate * fp_frac) must equal
  // the per-FP flop factor of the architecture's vector width. Load_All is
  // per logical cpu; scale back to the node.
  ASSERT_FALSE(std::isnan(m.Load_All));
  const int logical_cpus =
      2 * opts.cores_per_socket * (GetParam().hyperthreading ? 2 : 1);
  const double node_inst_rate =
      m.Load_All * logical_cpus / 0.30;  // fem load_frac = 0.30
  EXPECT_NEAR(m.flops * 1e9 / (node_inst_rate * 0.28), flops_per_fp,
              flops_per_fp * 0.05);

  // Uncore bandwidth only where the uncore is PCI-based.
  if (spec.uncore_in_pci) {
    EXPECT_FALSE(std::isnan(m.mbw));
    EXPECT_GT(m.mbw, 0.1);
  } else {
    EXPECT_TRUE(std::isnan(m.mbw));
  }

  // Cache-hit breakdown only with the full 8-PMC budget (no HT).
  if (GetParam().hyperthreading) {
    EXPECT_TRUE(std::isnan(m.Load_L2Hits));
    EXPECT_TRUE(std::isnan(m.Load_LLCHits));
  } else {
    EXPECT_FALSE(std::isnan(m.Load_L2Hits));
    EXPECT_FALSE(std::isnan(m.Load_LLCHits));
  }

  // RAPL and OS metrics are architecture-independent.
  EXPECT_FALSE(std::isnan(m.PkgWatts));
  EXPECT_FALSE(std::isnan(m.CPU_Usage));
  EXPECT_GT(m.CPU_Usage, 0.3);
}

TEST_P(ArchPipelineSweep, RawFilesCarryTheArchSchema) {
  MiniSimOptions opts;
  opts.uarch = GetParam().uarch;
  opts.hyperthreading = GetParam().hyperthreading;
  opts.cores_per_socket = 2;
  opts.samples = 2;
  const auto data = simulate_job(sweep_job(), opts);
  const auto& spec = simhw::arch_spec(GetParam().uarch);
  for (const auto& host : data.hosts) {
    EXPECT_EQ(host.arch, spec.codename);
    bool found = false;
    for (const auto& schema : host.schemas) {
      if (schema.type() == spec.codename) {
        found = true;
        // 2 fixed + 4 or 8 programmable counters.
        EXPECT_EQ(schema.size(),
                  GetParam().hyperthreading ? 6u : 10u);
      }
    }
    EXPECT_TRUE(found);
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (const auto uarch : simhw::all_microarchs()) {
    out.push_back({uarch, false});
    out.push_back({uarch, true});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, ArchPipelineSweep, ::testing::ValuesIn(sweep_params()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(simhw::to_string(info.param.uarch)) +
             (info.param.hyperthreading ? "_ht" : "_noht");
    });

}  // namespace
}  // namespace tacc::pipeline
