// Node hardware surfaces: MSR semantics (fixed counters, event-select
// programming, PMC budget, RAPL units and 32-bit wrap), PCI config space,
// failure injection, process lifecycle.
#include <gtest/gtest.h>

#include "simhw/msr.hpp"
#include "simhw/node.hpp"
#include "simhw/pci.hpp"

namespace tacc::simhw {
namespace {

NodeConfig small_config(Microarch uarch = Microarch::Haswell,
                        bool ht = false) {
  NodeConfig nc;
  nc.hostname = "c500-001";
  nc.uarch = uarch;
  nc.topology = Topology{2, 4, ht};
  return nc;
}

TEST(Node, CpuidMatchesArch) {
  Node node(small_config(Microarch::IvyBridge));
  const auto id = node.cpuid();
  EXPECT_EQ(id.family, 6);
  EXPECT_EQ(id.model, 62);
  EXPECT_NE(id.model_name.find("E5-2680 v2"), std::string::npos);
}

TEST(Node, FixedCountersReadTruth) {
  Node node(small_config());
  node.state().cores[3].instructions = 123456789;
  node.state().cores[3].cycles = 987654321;
  EXPECT_EQ(node.read_msr(3, msr::kFixedCtrInstructions), 123456789u);
  EXPECT_EQ(node.read_msr(3, msr::kFixedCtrCycles), 987654321u);
  EXPECT_EQ(node.read_msr(0, msr::kFixedCtrInstructions), 0u);
}

TEST(Node, FixedCountersMaskTo48Bits) {
  Node node(small_config());
  node.state().cores[0].instructions = (1ULL << 48) + 5;
  EXPECT_EQ(node.read_msr(0, msr::kFixedCtrInstructions), 5u);
}

TEST(Node, UnprogrammedPmcReadsZero) {
  Node node(small_config());
  node.state().cores[0].events[0] = 42;
  EXPECT_EQ(node.read_msr(0, msr::kPmcBase), 0u);
}

TEST(Node, ProgrammedPmcCountsSelectedEvent) {
  Node node(small_config());
  const auto& enc = node.arch().pmc_events[0];  // FpScalar on hsw
  node.write_msr(0, msr::kPerfEvtSelBase,
                 msr::make_evtsel(enc.event_select, enc.umask));
  node.state().cores[0].events[static_cast<std::size_t>(enc.event)] = 777;
  EXPECT_EQ(node.read_msr(0, msr::kPmcBase), 777u);
}

TEST(Node, DisabledEvtselCountsNothing) {
  Node node(small_config());
  const auto& enc = node.arch().pmc_events[0];
  // Write encoding without the enable bit.
  node.write_msr(0, msr::kPerfEvtSelBase,
                 msr::make_evtsel(enc.event_select, enc.umask) &
                     ~msr::kEvtSelEnable);
  node.state().cores[0].events[static_cast<std::size_t>(enc.event)] = 777;
  EXPECT_EQ(node.read_msr(0, msr::kPmcBase), 0u);
}

TEST(Node, WrongArchEncodingCountsNothing) {
  // Program the Nehalem FpScalar encoding on a Haswell part: the PMU does
  // not implement it, so the counter stays at zero.
  Node node(small_config(Microarch::Haswell));
  const auto& nhm = arch_spec(Microarch::Nehalem).pmc_events[0];
  const auto& hsw = arch_spec(Microarch::Haswell).pmc_events[0];
  ASSERT_TRUE(nhm.event_select != hsw.event_select ||
              nhm.umask != hsw.umask);
  node.write_msr(0, msr::kPerfEvtSelBase,
                 msr::make_evtsel(nhm.event_select, nhm.umask));
  node.state().cores[0].events[static_cast<std::size_t>(hsw.event)] = 777;
  EXPECT_EQ(node.read_msr(0, msr::kPmcBase), 0u);
}

TEST(Node, HtLimitsPmcBudget) {
  Node node(small_config(Microarch::Haswell, /*ht=*/true));
  // Counter index 4 does not exist with hyperthreading on.
  EXPECT_THROW(node.read_msr(0, msr::kPmcBase + 4), MsrError);
  EXPECT_THROW(node.write_msr(0, msr::kPerfEvtSelBase + 4, 0), MsrError);
  // Index 3 is fine.
  EXPECT_NO_THROW(node.read_msr(0, msr::kPmcBase + 3));
}

TEST(Node, NoHtAllowsEightPmcs) {
  Node node(small_config(Microarch::Haswell, /*ht=*/false));
  EXPECT_NO_THROW(node.read_msr(0, msr::kPmcBase + 7));
  EXPECT_THROW(node.read_msr(0, msr::kPmcBase + 8), MsrError);
}

TEST(Node, BadCpuAndUnknownMsrThrow) {
  Node node(small_config());
  EXPECT_THROW(node.read_msr(-1, msr::kFixedCtrCycles), MsrError);
  EXPECT_THROW(node.read_msr(99, msr::kFixedCtrCycles), MsrError);
  EXPECT_THROW(node.read_msr(0, 0xDEAD), MsrError);
  EXPECT_THROW(node.write_msr(0, msr::kFixedCtrCycles, 1), MsrError);
}

TEST(Node, RaplUnitRegister) {
  Node node(small_config());
  const auto unit = node.read_msr(0, msr::kRaplPowerUnit);
  EXPECT_EQ((unit >> msr::kEnergyStatusUnitsShift) & 0x1F,
            static_cast<std::uint64_t>(msr::kEnergyStatusUnits));
}

TEST(Node, RaplEnergyConversion) {
  Node node(small_config());
  // 1 J = 1e6 uJ truth -> register counts in 2^-16 J units = 65536.
  node.state().sockets[0].energy_pkg_uj = 1000000;
  EXPECT_EQ(node.read_msr(0, msr::kPkgEnergyStatus), 65536u);
}

TEST(Node, RaplCounterWrapsAt32Bits) {
  Node node(small_config());
  // Truth energy equivalent to exactly 2^32 register units + 3.
  const std::uint64_t uj =
      (((1ULL << 32) + 3) * 1000000ULL) >> 16;  // inverse of the conversion
  node.state().sockets[0].energy_pkg_uj = uj;
  const auto reg = node.read_msr(0, msr::kPkgEnergyStatus);
  EXPECT_LT(reg, 16u);  // wrapped near zero (rounding slack)
}

TEST(Node, RaplIsPerSocket) {
  Node node(small_config());
  node.state().sockets[1].energy_dram_uj = 2000000;
  // cpu 4 is on socket 1 (2 sockets x 4 cores).
  EXPECT_EQ(node.read_msr(4, msr::kDramEnergyStatus), 131072u);
  EXPECT_EQ(node.read_msr(0, msr::kDramEnergyStatus), 0u);
}

TEST(Node, PciUncoreReads) {
  Node node(small_config(Microarch::Haswell));
  node.state().sockets[1].imc_cas_reads = 1111;
  node.state().sockets[1].imc_cas_writes = 2222;
  node.state().sockets[1].qpi_data_flits = 3333;
  EXPECT_EQ(node.pci_read64(1, pci::kImcDevice, pci::kImcFunction,
                            pci::kImcCasReadsOffset),
            1111u);
  EXPECT_EQ(node.pci_read64(1, pci::kImcDevice, pci::kImcFunction,
                            pci::kImcCasWritesOffset),
            2222u);
  EXPECT_EQ(node.pci_read64(1, pci::kQpiDevice, pci::kQpiFunction,
                            pci::kQpiDataFlitsOffset),
            3333u);
}

TEST(Node, PciUncoreMasksTo48Bits) {
  Node node(small_config());
  node.state().sockets[0].imc_cas_reads = (1ULL << 48) + 9;
  EXPECT_EQ(node.pci_read64(0, pci::kImcDevice, pci::kImcFunction,
                            pci::kImcCasReadsOffset),
            9u);
}

TEST(Node, PciAbsentOnMsrUncoreArchs) {
  Node node(small_config(Microarch::Westmere));
  EXPECT_FALSE(node.pci_read64(0, pci::kImcDevice, pci::kImcFunction,
                               pci::kImcCasReadsOffset)
                   .has_value());
}

TEST(Node, PciUnknownDeviceIsEmpty) {
  Node node(small_config());
  EXPECT_FALSE(node.pci_read64(0, 0x42, 0, 0).has_value());
  EXPECT_FALSE(node.pci_read64(9, pci::kImcDevice, 0,
                               pci::kImcCasReadsOffset)
                   .has_value());
}

TEST(Node, FailureMakesAccessThrow) {
  Node node(small_config());
  node.set_failed(true);
  EXPECT_THROW(node.read_msr(0, msr::kFixedCtrCycles), NodeFailedError);
  EXPECT_THROW(node.read_file("/proc/stat"), NodeFailedError);
  EXPECT_THROW(node.cpuid(), NodeFailedError);
  EXPECT_THROW(node.list_pids(), NodeFailedError);
  node.set_failed(false);
  EXPECT_NO_THROW(node.read_msr(0, msr::kFixedCtrCycles));
}

TEST(Node, ProcessLifecycle) {
  Node node(small_config());
  ProcessInfo p;
  p.pid = 1234;
  p.name = "wrf.exe";
  node.spawn_process(p);
  EXPECT_EQ(node.list_pids(), std::vector<int>{1234});
  EXPECT_TRUE(node.read_file("/proc/1234/status").has_value());
  node.kill_process(1234);
  EXPECT_TRUE(node.list_pids().empty());
  EXPECT_FALSE(node.read_file("/proc/1234/status").has_value());
  node.kill_process(1234);  // idempotent
}

TEST(Node, UnknownPathsReturnEmpty) {
  Node node(small_config());
  EXPECT_FALSE(node.read_file("/proc/bogus").has_value());
  EXPECT_FALSE(node.read_file("/proc/99/status").has_value());
  EXPECT_TRUE(node.list_dir("/nonexistent").empty());
}

TEST(Node, OptionalHardwareAbsence) {
  auto nc = small_config();
  nc.has_lustre = false;
  nc.has_ib = false;
  nc.has_phi = false;
  Node node(nc);
  EXPECT_TRUE(node.list_dir("/proc/fs/lustre/llite").empty());
  EXPECT_TRUE(node.list_dir("/sys/class/infiniband").empty());
  EXPECT_TRUE(node.list_dir("/sys/class/mic").empty());
  EXPECT_FALSE(node.read_file("/proc/sys/lnet/stats").has_value());
}

}  // namespace
}  // namespace tacc::simhw
