// Automated real-time response (section VI-B): strike policy, suspension
// through the live scheduler, administrator notification, end-to-end storm
// containment.
#include <gtest/gtest.h>

#include "core/autoresponder.hpp"

namespace tacc::core {
namespace {

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;

struct World {
  simhw::Cluster cluster;
  ClusterMonitor monitor;
  LiveScheduler scheduler;

  explicit World(int nodes)
      : cluster([&] {
          simhw::ClusterConfig cc;
          cc.num_nodes = nodes;
          cc.topology = simhw::Topology{2, 4, false};
          cc.phi_fraction = 0.0;
          return cc;
        }()),
        monitor(cluster,
                [] {
                  MonitorConfig mc;
                  mc.start = kStart;
                  return mc;
                }()),
        scheduler(monitor, static_cast<std::size_t>(nodes)) {}
};

workload::JobSpec storm_job(long id, int nodes, util::SimTime duration) {
  workload::JobSpec j;
  j.jobid = id;
  j.user = "wrfuser42";
  j.profile = "wrf_mdstorm";
  j.exe = "wrf.exe";
  j.nodes = nodes;
  j.wayness = 8;
  j.submit_time = kStart;
  j.start_time = kStart;
  j.end_time = kStart + duration;
  return j;
}

TEST(AutoResponder, SuspendsStormAfterStrikes) {
  World w(2);
  AutoResponder responder(*w.monitor.online(), w.scheduler,
                          ResponderConfig{/*strikes=*/3});
  w.scheduler.submit(storm_job(800, 2, 6 * util::kHour));
  // Advance in sampling steps, polling like a supervising daemon would.
  bool acted = false;
  for (int step = 0; step < 36 && !acted; ++step) {
    w.scheduler.run_until(kStart + (step + 1) * 10 * util::kMinute);
    w.monitor.drain();
    acted = !responder.poll().empty();
  }
  ASSERT_TRUE(acted);
  ASSERT_EQ(responder.actions().size(), 1u);
  const auto& action = responder.actions()[0];
  EXPECT_EQ(action.jobid, 800);
  EXPECT_EQ(action.rule, "metadata_storm");
  EXPECT_GE(action.strikes, 3);
  EXPECT_TRUE(action.suspended);
  // The job was cut short, its status records the intervention, and its
  // nodes are free again.
  ASSERT_EQ(w.scheduler.completed().size(), 1u);
  EXPECT_EQ(w.scheduler.completed()[0].status, "SUSPENDED");
  EXPECT_LT(w.scheduler.completed()[0].end_time, kStart + 6 * util::kHour);
  EXPECT_EQ(w.scheduler.free_nodes(), 2u);
}

TEST(AutoResponder, StrikePolicyToleratesOneAlert) {
  World w(1);
  ResponderConfig config;
  config.strikes = 1000;  // effectively never act
  AutoResponder responder(*w.monitor.online(), w.scheduler, config);
  w.scheduler.submit(storm_job(801, 1, util::kHour));
  w.scheduler.run_until(kStart + util::kHour);
  w.monitor.drain();
  EXPECT_TRUE(responder.poll().empty());
  // Job ran to normal completion.
  w.scheduler.drain_jobs();
  ASSERT_EQ(w.scheduler.completed().size(), 1u);
  EXPECT_EQ(w.scheduler.completed()[0].status, "COMPLETED");
}

TEST(AutoResponder, HealthyJobNeverTouched) {
  World w(1);
  AutoResponder responder(*w.monitor.online(), w.scheduler,
                          ResponderConfig{1});
  auto j = storm_job(802, 1, 2 * util::kHour);
  j.profile = "md_engine";
  j.exe = "namd2";
  w.scheduler.submit(j);
  w.scheduler.drain_jobs();
  w.monitor.drain();
  EXPECT_TRUE(responder.poll().empty());
  EXPECT_EQ(w.scheduler.completed()[0].status, "COMPLETED");
}

TEST(AutoResponder, NotifierReceivesAction) {
  World w(1);
  std::vector<ResponderAction> notified;
  AutoResponder responder(
      *w.monitor.online(), w.scheduler, ResponderConfig{1},
      [&](const ResponderAction& a) { notified.push_back(a); });
  w.scheduler.submit(storm_job(803, 1, 4 * util::kHour));
  for (int step = 0; step < 12 && notified.empty(); ++step) {
    w.scheduler.run_until(kStart + (step + 1) * 10 * util::kMinute);
    w.monitor.drain();
    responder.poll();
  }
  ASSERT_EQ(notified.size(), 1u);
  EXPECT_EQ(notified[0].jobid, 803);
}

TEST(AutoResponder, EachJobSuspendedOnce) {
  World w(1);
  AutoResponder responder(*w.monitor.online(), w.scheduler,
                          ResponderConfig{1});
  w.scheduler.submit(storm_job(804, 1, 4 * util::kHour));
  for (int step = 0; step < 12; ++step) {
    w.scheduler.run_until(kStart + (step + 1) * 10 * util::kMinute);
    w.monitor.drain();
    responder.poll();
  }
  EXPECT_EQ(responder.actions().size(), 1u);
}

}  // namespace
}  // namespace tacc::core
