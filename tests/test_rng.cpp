// Deterministic RNG: reproducibility, distribution sanity, stream
// independence.
#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tacc::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(123);
  Rng b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b();
  EXPECT_LT(same, 3);
}

TEST(Rng, NamedSeedingIsDeterministic) {
  Rng a("engine.job", 42);
  Rng b("engine.job", 42);
  Rng c("engine.job", 43);
  EXPECT_EQ(a(), b());
  Rng a2("engine.job", 42);
  EXPECT_NE(a2(), c());
}

TEST(Rng, NamedSeedingDistinguishesNames) {
  Rng a("alpha", 1);
  Rng b("beta", 1);
  EXPECT_NE(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 9.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalShifted) {
  Rng rng(13);
  RunningStat s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(14);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal_median(7.0, 0.8));
  EXPECT_NEAR(percentile(std::span<const double>(xs.data(), xs.size()), 50.0),
              7.0, 0.35);
  for (const double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(15);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
}

TEST(Rng, ParetoMinimum) {
  Rng rng(16);
  for (int i = 0; i < 5000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(18);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(19);
  const std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[rng.weighted_index(w)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 50000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 50000.0, 0.3, 0.015);
  EXPECT_NEAR(counts[3] / 50000.0, 0.6, 0.015);
}

TEST(Rng, WeightedIndexNegativeWeightsIgnored) {
  Rng rng(20);
  const std::vector<double> w = {-5.0, 1.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.weighted_index(w), 1u);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(21);
  Rng childA = parent.split(1);
  Rng childB = parent.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += childA() == childB();
  EXPECT_LT(same, 3);
}

TEST(Rng, Fnv1aStability) {
  // Known FNV-1a test vector.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeAndVaries) {
  Rng rng(GetParam());
  std::set<std::uint64_t> distinct;
  for (int i = 0; i < 256; ++i) distinct.insert(rng());
  EXPECT_GT(distinct.size(), 250u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 1337, 0xffffffffULL,
                                           ~0ULL));

}  // namespace
}  // namespace tacc::util
