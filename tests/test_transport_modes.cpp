// Daemon- and cron-mode transports end to end: self-describing chunks,
// real-time consumption, rotation/staging latency, failure loss.
#include <gtest/gtest.h>

#include "simhw/cluster.hpp"
#include "transport/consumer.hpp"
#include "transport/cron.hpp"
#include "transport/daemon.hpp"

namespace tacc::transport {
namespace {

constexpr util::SimTime kMidnight = 1451606400LL * util::kSecond;  // 2016-01-01

simhw::Cluster small_cluster(int n = 2) {
  simhw::ClusterConfig cc;
  cc.num_nodes = n;
  cc.topology = simhw::Topology{1, 2, false};
  cc.phi_fraction = 0.0;
  return simhw::Cluster(cc);
}

TEST(Daemon, PublishesParseableChunks) {
  auto cluster = small_cluster(1);
  Broker broker;
  broker.bind("q", "stats.*");
  StatsDaemon daemon(cluster.node(0), broker, {},
                     [] { return std::vector<long>{77}; });
  EXPECT_TRUE(daemon.on_time(kMidnight));
  const auto msg = broker.consume("q", std::chrono::milliseconds(100));
  ASSERT_TRUE(msg);
  EXPECT_EQ(msg->routing_key, "stats.c400-001");
  const auto chunk = collect::HostLog::parse(msg->body);
  EXPECT_EQ(chunk.hostname, "c400-001");
  ASSERT_EQ(chunk.records.size(), 1u);
  EXPECT_EQ(chunk.records[0].jobids, std::vector<long>{77});
}

TEST(Daemon, RespectsInterval) {
  auto cluster = small_cluster(1);
  Broker broker;
  broker.bind("q", "#");
  DaemonConfig dc;
  dc.interval = 10 * util::kMinute;
  StatsDaemon daemon(cluster.node(0), broker, dc,
                     [] { return std::vector<long>{}; });
  EXPECT_TRUE(daemon.on_time(kMidnight));
  EXPECT_FALSE(daemon.on_time(kMidnight + util::kMinute));   // too soon
  EXPECT_FALSE(daemon.on_time(kMidnight + 9 * util::kMinute));
  EXPECT_TRUE(daemon.on_time(kMidnight + 10 * util::kMinute));
  EXPECT_EQ(daemon.stats().collections, 2u);
}

TEST(Daemon, CollectNowBypassesInterval) {
  auto cluster = small_cluster(1);
  Broker broker;
  broker.bind("q", "#");
  StatsDaemon daemon(cluster.node(0), broker, {},
                     [] { return std::vector<long>{}; });
  EXPECT_TRUE(daemon.on_time(kMidnight));
  EXPECT_TRUE(daemon.collect_now(kMidnight + util::kSecond, "begin"));
  EXPECT_EQ(daemon.stats().collections, 2u);
}

TEST(Daemon, FailedNodeCountsFailure) {
  auto cluster = small_cluster(1);
  Broker broker;
  broker.bind("q", "#");
  StatsDaemon daemon(cluster.node(0), broker, {},
                     [] { return std::vector<long>{}; });
  cluster.fail_node(0);
  EXPECT_FALSE(daemon.on_time(kMidnight));
  EXPECT_EQ(daemon.stats().publish_failures, 1u);
  EXPECT_EQ(daemon.stats().collections, 0u);
}

TEST(Consumer, ArchivesChunksInRealTime) {
  auto cluster = small_cluster(1);
  Broker broker;
  broker.bind("raw", "stats.*");
  RawArchive archive;
  int callbacks = 0;
  Consumer consumer(broker, archive, "raw",
                    [&](const std::string&, const collect::HostLog&) {
                      ++callbacks;
                    });
  StatsDaemon daemon(cluster.node(0), broker, {},
                     [] { return std::vector<long>{}; });
  for (int i = 0; i < 5; ++i) {
    daemon.collect_now(kMidnight + i * util::kMinute, {});
  }
  consumer.drain();
  EXPECT_EQ(consumer.consumed(), 5u);
  EXPECT_EQ(callbacks, 5);
  EXPECT_EQ(archive.total_records(), 5u);
  const auto log = archive.log("c400-001");
  EXPECT_EQ(log.records.size(), 5u);
  EXPECT_FALSE(log.schemas.empty());
  // Real-time mode: ingest latency is zero in simulated time.
  EXPECT_DOUBLE_EQ(archive.latency().max(), 0.0);
  consumer.stop();
}

TEST(Consumer, MalformedChunkCountedNotFatal) {
  Broker broker;
  broker.bind("raw", "#");
  RawArchive archive;
  Consumer consumer(broker, archive, "raw");
  broker.publish("k", "this is not a stats chunk");
  broker.publish("k", "$tacc_stats 2.1\n$hostname h\n$arch x\n");
  consumer.drain();
  EXPECT_EQ(consumer.parse_errors(), 1u);
  EXPECT_EQ(consumer.consumed(), 1u);  // the header-only chunk parses
  consumer.stop();
}

TEST(Cron, CollectsAtInterval) {
  auto cluster = small_cluster(2);
  RawArchive archive;
  CronConfig cc;
  cc.interval = 10 * util::kMinute;
  CronMode cron(cluster, archive, cc,
                [](std::size_t) { return std::vector<long>{}; });
  for (int i = 0; i <= 6; ++i) {
    cron.on_time(kMidnight + i * 10 * util::kMinute);
  }
  EXPECT_EQ(cron.stats().collected_records, 2u * 7u);
  // Nothing staged yet: data is node-local until the daily rsync.
  EXPECT_EQ(archive.total_records(), 0u);
}

TEST(Cron, StagesOncePerDayWithLatency) {
  auto cluster = small_cluster(1);
  RawArchive archive;
  CronConfig cc;
  cc.interval = util::kHour;
  CronMode cron(cluster, archive, cc,
                [](std::size_t) { return std::vector<long>{}; });
  // Run a full day plus the staging window of the next morning.
  for (util::SimTime t = kMidnight; t <= kMidnight + 30 * util::kHour;
       t += util::kHour) {
    cron.on_time(t);
  }
  // Yesterday's records are in the archive now.
  EXPECT_GE(archive.total_records(), 24u);
  EXPECT_GT(cron.stats().staged_records, 0u);
  // Latency is hours: records waited for rotation + staging.
  EXPECT_GT(archive.latency().mean(), 3600.0);
  EXPECT_LT(archive.latency().mean(), 30.0 * 3600.0);
}

TEST(Cron, NodeFailureLosesUnstagedData) {
  auto cluster = small_cluster(1);
  RawArchive archive;
  CronConfig cc;
  cc.interval = 10 * util::kMinute;
  CronMode cron(cluster, archive, cc,
                [](std::size_t) { return std::vector<long>{}; });
  for (int i = 0; i < 12; ++i) {
    cron.on_time(kMidnight + i * 10 * util::kMinute);
  }
  const auto collected = cron.stats().collected_records;
  EXPECT_EQ(collected, 12u);
  cluster.fail_node(0);
  cron.node_failed(0);
  EXPECT_EQ(cron.stats().lost_records, collected);  // all unstaged -> lost
  // Continued operation skips the dead node.
  cron.on_time(kMidnight + 3 * util::kHour);
  EXPECT_GT(cron.stats().skipped_nodes, 0u);
  EXPECT_EQ(archive.total_records(), 0u);
}

TEST(Cron, BeginEndMarksViaCollectNow) {
  auto cluster = small_cluster(1);
  RawArchive archive;
  CronMode cron(cluster, archive, {},
                [](std::size_t) { return std::vector<long>{42}; });
  EXPECT_TRUE(cron.collect_now(0, kMidnight, "begin"));
  cluster.fail_node(0);
  EXPECT_FALSE(cron.collect_now(0, kMidnight + util::kSecond, "end"));
}

TEST(Archive, HeaderFirstWriteWins) {
  RawArchive archive;
  archive.add_header("h1", "hsw", {});
  archive.add_header("h1", "snb", {});
  EXPECT_EQ(archive.log("h1").arch, "hsw");
  EXPECT_EQ(archive.hosts(), std::vector<std::string>{"h1"});
  EXPECT_TRUE(archive.log("unknown").records.empty());
}

}  // namespace
}  // namespace tacc::transport
