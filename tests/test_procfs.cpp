// procfs/sysfs text renderers: genuine Linux/Lustre formats, unit quirks.
#include <gtest/gtest.h>

#include "simhw/node.hpp"
#include "simhw/procfs.hpp"
#include "util/clock.hpp"
#include "util/strings.hpp"

namespace tacc::simhw {
namespace {

Node make_node() {
  NodeConfig nc;
  nc.hostname = "c401-102";
  nc.topology = Topology{2, 2, false};  // 4 cpus
  return Node(nc);
}

TEST(Procfs, StatLayout) {
  Node node = make_node();
  node.state().cores[0].user = 100;
  node.state().cores[0].idle = 900;
  node.state().cores[2].user = 50;
  const auto text = *node.read_file("/proc/stat");
  const auto lines = util::split_lines(text);
  // Aggregate line sums the cores.
  EXPECT_TRUE(util::starts_with(lines[0], "cpu  150 "));
  // Per-cpu lines.
  EXPECT_TRUE(util::starts_with(lines[1], "cpu0 100 0 0 900 0"));
  EXPECT_TRUE(util::starts_with(lines[3], "cpu2 50 "));
  // 1 aggregate + 4 cpus + trailer lines.
  int cpu_lines = 0;
  for (const auto l : lines) {
    if (util::starts_with(l, "cpu")) ++cpu_lines;
  }
  EXPECT_EQ(cpu_lines, 5);
}

TEST(Procfs, MeminfoArithmeticConsistent) {
  Node node = make_node();
  node.state().mem.total_kb = 32 * 1024 * 1024;
  node.state().mem.used_kb = 4 * 1024 * 1024;
  const auto text = *node.read_file("/proc/meminfo");
  auto grab = [&](const char* key) {
    for (const auto l : util::split_lines(text)) {
      if (util::starts_with(l, key)) {
        return *util::parse_u64(util::split_ws(l)[1]);
      }
    }
    return std::uint64_t{0};
  };
  const auto total = grab("MemTotal:");
  const auto free_kb = grab("MemFree:");
  const auto cached = grab("Cached:");
  EXPECT_EQ(total, 32u * 1024 * 1024);
  // used = total - free - cached reproduces the truth value.
  EXPECT_EQ(total - free_kb - cached, 4u * 1024 * 1024);
}

TEST(Procfs, CpuinfoIdentifiesArch) {
  Node node = make_node();
  const auto text = *node.read_file("/proc/cpuinfo");
  EXPECT_NE(text.find("GenuineIntel"), std::string::npos);
  EXPECT_NE(text.find("model\t\t: 63"), std::string::npos);  // hsw default
  // One "processor" stanza per logical cpu.
  std::size_t count = 0, pos = 0;
  while ((pos = text.find("processor\t:", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 4u);
}

TEST(Procfs, NetDevColumns) {
  Node node = make_node();
  node.state().eth.rx_bytes = 1000;
  node.state().eth.rx_packets = 10;
  node.state().eth.tx_bytes = 2000;
  node.state().eth.tx_packets = 20;
  const auto text = *node.read_file("/proc/net/dev");
  for (const auto l : util::split_lines(text)) {
    const auto t = util::trim(l);
    if (!util::starts_with(t, "eth0:")) continue;
    const auto fields = util::split_ws(t.substr(5));
    ASSERT_GE(fields.size(), 16u);
    EXPECT_EQ(*util::parse_u64(fields[0]), 1000u);   // rx bytes
    EXPECT_EQ(*util::parse_u64(fields[1]), 10u);     // rx packets
    EXPECT_EQ(*util::parse_u64(fields[8]), 2000u);   // tx bytes
    EXPECT_EQ(*util::parse_u64(fields[9]), 20u);     // tx packets
    return;
  }
  FAIL() << "no eth0 line";
}

TEST(Procfs, PidStatusFields) {
  Node node = make_node();
  ProcessInfo p;
  p.pid = 4321;
  p.name = "namd2";
  p.uid = 10007;
  p.vm_size_kb = 500000;
  p.vm_hwm_kb = 321000;
  p.vm_rss_kb = 320000;
  p.threads = 4;
  p.cpus_allowed = 0xF0;
  node.spawn_process(p);
  const auto text = *node.read_file("/proc/4321/status");
  EXPECT_NE(text.find("Name:\tnamd2"), std::string::npos);
  EXPECT_NE(text.find("Uid:\t10007"), std::string::npos);
  EXPECT_NE(text.find("VmHWM:\t  321000 kB"), std::string::npos);
  EXPECT_NE(text.find("Threads:\t4"), std::string::npos);
  EXPECT_NE(text.find("Cpus_allowed:\t00000000000000f0"), std::string::npos);
}

TEST(Procfs, LliteStatsLayout) {
  Node node = make_node();
  auto& lu = node.state().lustre;
  lu.read_bytes = 123456;
  lu.read_samples = 12;
  lu.write_bytes = 654321;
  lu.write_samples = 21;
  lu.open = 77;
  lu.close = 76;
  node.state().now_us = 1451606400 * util::kSecond;
  const auto name = procfs::llite_instance(node);
  EXPECT_TRUE(util::starts_with(name, "work-ffff"));
  const auto text =
      *node.read_file("/proc/fs/lustre/llite/" + name + "/stats");
  EXPECT_NE(text.find("snapshot_time"), std::string::npos);
  EXPECT_NE(text.find("read_bytes                12 samples [bytes] 0 "
                      "1048576 123456"),
            std::string::npos);
  EXPECT_NE(text.find("open                      77 samples [regs]"),
            std::string::npos);
  EXPECT_NE(text.find("close                     76 samples [regs]"),
            std::string::npos);
}

TEST(Procfs, MdcStatsCarriesReqsAndWait) {
  Node node = make_node();
  node.state().lustre.mdc_reqs = 1000;
  node.state().lustre.mdc_wait_us = 150000;
  const auto name = procfs::mdc_instance(node);
  EXPECT_NE(name.find("MDT0000-mdc-"), std::string::npos);
  const auto text = *node.read_file("/proc/fs/lustre/mdc/" + name + "/stats");
  EXPECT_NE(text.find("req_waittime              1000 samples [usec] 0 "
                      "500000 150000"),
            std::string::npos);
}

TEST(Procfs, OscTargetsEnumerate) {
  Node node = make_node();
  const auto targets = node.list_dir("/proc/fs/lustre/osc");
  ASSERT_EQ(targets.size(),
            static_cast<std::size_t>(LustreState::kNumOsts));
  EXPECT_NE(targets[0].find("OST0000-osc-"), std::string::npos);
  EXPECT_NE(targets[3].find("OST0003-osc-"), std::string::npos);
  node.state().lustre.osc_reqs[2] = 500;
  node.state().lustre.osc_read_bytes[2] = 99999;
  const auto text =
      *node.read_file("/proc/fs/lustre/osc/" + targets[2] + "/stats");
  EXPECT_NE(text.find("req_waittime              500 samples"),
            std::string::npos);
  EXPECT_NE(text.find("99999"), std::string::npos);
}

TEST(Procfs, LnetStatsElevenColumns) {
  Node node = make_node();
  node.state().lnet.send_count = 11;
  node.state().lnet.recv_count = 22;
  node.state().lnet.send_bytes = 3333;
  node.state().lnet.recv_bytes = 4444;
  const auto text = *node.read_file("/proc/sys/lnet/stats");
  const auto fields = util::split_ws(util::trim(text));
  ASSERT_EQ(fields.size(), 11u);
  EXPECT_EQ(*util::parse_u64(fields[3]), 11u);
  EXPECT_EQ(*util::parse_u64(fields[4]), 22u);
  EXPECT_EQ(*util::parse_u64(fields[7]), 3333u);
  EXPECT_EQ(*util::parse_u64(fields[8]), 4444u);
}

TEST(Procfs, IbCountersInFourByteWords) {
  Node node = make_node();
  node.state().ib.rx_bytes = 4000;
  node.state().ib.tx_bytes = 8000;
  node.state().ib.rx_packets = 7;
  const std::string base =
      "/sys/class/infiniband/mlx4_0/ports/1/counters_ext/";
  EXPECT_EQ(util::trim(*node.read_file(base + "port_rcv_data_64")), "1000");
  EXPECT_EQ(util::trim(*node.read_file(base + "port_xmit_data_64")), "2000");
  EXPECT_EQ(util::trim(*node.read_file(base + "port_rcv_pkts_64")), "7");
}

TEST(Procfs, MicStatsWhenPhiPresent) {
  auto nc = NodeConfig{};
  nc.has_phi = true;
  Node node(nc);
  node.state().mic.user_jiffies = 10;
  node.state().mic.sys_jiffies = 2;
  node.state().mic.idle_jiffies = 88;
  EXPECT_EQ(node.list_dir("/sys/class/mic"), std::vector<std::string>{"mic0"});
  const auto text = *node.read_file("/sys/class/mic/mic0/stats");
  EXPECT_EQ(util::trim(text), "user: 10 nice: 0 sys: 2 idle: 88");
}

TEST(Procfs, InstanceNamesAreDeterministicPerHost) {
  Node a = make_node();
  Node b = make_node();
  EXPECT_EQ(procfs::llite_instance(a), procfs::llite_instance(b));
  NodeConfig other;
  other.hostname = "c999-001";
  Node c(other);
  EXPECT_NE(procfs::llite_instance(a), procfs::llite_instance(c));
}

}  // namespace
}  // namespace tacc::simhw
