// Schema model: spec-line round trips, flag grammar, wraparound deltas.
#include <gtest/gtest.h>

#include "collect/schema.hpp"
#include "util/rng.hpp"

namespace tacc::collect {
namespace {

TEST(Schema, SpecLineFormat) {
  Schema s("rapl", {{"energy_pkg", true, 32, "uJ", 15.2587890625},
                    {"flag", false, 64, "", 1.0}});
  const std::string line = s.spec_line();
  EXPECT_TRUE(line.rfind("!rapl ", 0) == 0);
  EXPECT_NE(line.find("energy_pkg,E,W=32,U=uJ,S="), std::string::npos);
  EXPECT_NE(line.find(" flag"), std::string::npos);
  EXPECT_EQ(line.find("flag,E"), std::string::npos);  // gauge: no E flag
}

TEST(Schema, ParseRoundTrip) {
  Schema original("ib", {{"port_rcv_data", true, 64, "bytes", 4.0},
                         {"port_rcv_pkts", true, 64, "packets", 1.0},
                         {"gauge_thing", false, 48, "KB", 1.0}});
  const Schema parsed = Schema::parse(original.spec_line());
  EXPECT_EQ(parsed.type(), "ib");
  ASSERT_EQ(parsed.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed.entry(i).key, original.entry(i).key);
    EXPECT_EQ(parsed.entry(i).cumulative, original.entry(i).cumulative);
    EXPECT_EQ(parsed.entry(i).width_bits, original.entry(i).width_bits);
    EXPECT_EQ(parsed.entry(i).unit, original.entry(i).unit);
    EXPECT_DOUBLE_EQ(parsed.entry(i).scale, original.entry(i).scale);
  }
}

TEST(Schema, ParseErrors) {
  EXPECT_THROW(Schema::parse("cpu user,E"), std::invalid_argument);  // no '!'
  EXPECT_THROW(Schema::parse("!"), std::invalid_argument);           // no type
  EXPECT_THROW(Schema::parse("!cpu user,X"), std::invalid_argument);
  EXPECT_THROW(Schema::parse("!cpu user,W=0"), std::invalid_argument);
  EXPECT_THROW(Schema::parse("!cpu user,W=65"), std::invalid_argument);
  EXPECT_THROW(Schema::parse("!cpu user,W=abc"), std::invalid_argument);
  EXPECT_THROW(Schema::parse("!cpu user,S=xyz"), std::invalid_argument);
}

TEST(Schema, IndexOf) {
  Schema s("cpu", {{"user", true, 64, "", 1.0}, {"idle", true, 64, "", 1.0}});
  EXPECT_EQ(s.index_of("user"), 0u);
  EXPECT_EQ(s.index_of("idle"), 1u);
  EXPECT_FALSE(s.index_of("nope").has_value());
}

TEST(Schema, RandomRoundTripProperty) {
  util::Rng rng("schema.prop", 1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<SchemaEntry> entries;
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < n; ++i) {
      SchemaEntry e;
      e.key = "k" + std::to_string(i);
      e.cumulative = rng.bernoulli(0.7);
      e.width_bits = static_cast<int>(rng.uniform_int(16, 64));
      e.unit = rng.bernoulli(0.5) ? "bytes" : "";
      e.scale = rng.bernoulli(0.3) ? rng.uniform(0.001, 64.0) : 1.0;
      entries.push_back(e);
    }
    Schema s("t" + std::to_string(trial), entries);
    const Schema parsed = Schema::parse(s.spec_line());
    ASSERT_EQ(parsed.size(), s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(parsed.entry(i).key, s.entry(i).key);
      EXPECT_EQ(parsed.entry(i).cumulative, s.entry(i).cumulative);
      EXPECT_EQ(parsed.entry(i).width_bits, s.entry(i).width_bits);
      EXPECT_DOUBLE_EQ(parsed.entry(i).scale, s.entry(i).scale);
    }
  }
}

TEST(WrapDelta, FullWidthUsesUnsignedWrap) {
  EXPECT_EQ(wrap_delta(10, 15, 64), 5u);
  EXPECT_EQ(wrap_delta(~0ULL, 4, 64), 5u);
}

TEST(WrapDelta, NarrowCounterSingleWrap) {
  // 32-bit counter wrapped once: prev near top, curr near bottom.
  const std::uint64_t top = (1ULL << 32) - 10;
  EXPECT_EQ(wrap_delta(top, 5, 32), 15u);
}

TEST(WrapDelta, NoWrapNarrow) {
  EXPECT_EQ(wrap_delta(100, 250, 32), 150u);
  EXPECT_EQ(wrap_delta(100, 100, 32), 0u);
}

TEST(WrapDelta, FortyEightBit) {
  const std::uint64_t top = (1ULL << 48) - 1;
  EXPECT_EQ(wrap_delta(top, 0, 48), 1u);
  EXPECT_EQ(wrap_delta(0, top, 48), top);
}

TEST(WrapDelta, PropertyDeltaRecoversIncrement) {
  util::Rng rng("wrap.prop", 2);
  for (int trial = 0; trial < 200; ++trial) {
    const int width = static_cast<int>(rng.uniform_int(8, 63));
    const std::uint64_t modulus = 1ULL << width;
    const std::uint64_t start =
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)) % modulus;
    const std::uint64_t inc =
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)) %
        modulus;  // less than one full wrap
    const std::uint64_t end = (start + inc) % modulus;
    EXPECT_EQ(wrap_delta(start, end, width), inc);
  }
}

}  // namespace
}  // namespace tacc::collect
