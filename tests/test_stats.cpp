// Statistics helpers: Welford accumulator, correlation, percentiles,
// histograms.
#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tacc::util {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  Rng rng(77);
  RunningStat whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero) {
  const std::vector<double> x = {3, 3, 3};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, MismatchedSizesAreZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 2};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, IndependentNearZero) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.normal());
    y.push_back(rng.normal());
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, KnownValues) {
  const std::vector<double> xs = {15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 35.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 3.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> xs = {9, 1, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
}

TEST(Histogram, InvalidArgs) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, OfDataSpansRange) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const auto h = Histogram::of(xs, 3);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.lo(), 1.0);
  EXPECT_DOUBLE_EQ(h.hi(), 4.0);
}

TEST(Histogram, OfEmptyData) {
  const auto h = Histogram::of({}, 3);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bins(), 3u);
}

TEST(Histogram, OfConstantData) {
  const std::vector<double> xs = {5.0, 5.0, 5.0};
  const auto h = Histogram::of(xs, 4);
  EXPECT_EQ(h.total(), 3u);  // degenerate range widened, all land somewhere
}

TEST(Histogram, RenderContainsTitleAndCounts) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string s = h.render("Run time");
  EXPECT_NE(s.find("Run time"), std::string::npos);
  EXPECT_NE(s.find("(n=3)"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(MeanStddev, Basics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 1.0);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
}

}  // namespace
}  // namespace tacc::util
