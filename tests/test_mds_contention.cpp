// Shared-MDS queueing in the engine (the section VI-A interference
// mechanism): one job's metadata load must raise other jobs' observed
// per-request wait, emergently, through the collected counters.
#include <gtest/gtest.h>

#include "collect/registry.hpp"
#include "pipeline/metrics.hpp"
#include "simhw/cluster.hpp"
#include "workload/engine.hpp"
#include "workload/generator.hpp"

namespace tacc::workload {
namespace {

constexpr util::SimTime kStart = 1451606400LL * util::kSecond;

JobSpec make_job(long id, const char* profile, int nodes,
                 util::SimTime start, util::SimTime runtime) {
  JobSpec j;
  j.jobid = id;
  j.user = "u";
  j.profile = profile;
  j.exe = find_profile(profile).exe;
  j.nodes = nodes;
  j.wayness = 8;
  j.start_time = start;
  j.end_time = start + runtime;
  j.submit_time = start;
  return j;
}

/// Victim's observed us-per-request over an interval, with/without a
/// concurrent storm.
double victim_wait(bool with_storm) {
  simhw::ClusterConfig cc;
  cc.num_nodes = with_storm ? 5 : 1;
  cc.topology = simhw::Topology{2, 4, false};
  simhw::Cluster cluster(cc);
  Engine engine(cluster, kStart);
  engine.start_job(make_job(1, "wrf", 1, kStart, 2 * util::kHour), {0});
  if (with_storm) {
    engine.start_job(make_job(2, "wrf_mdstorm", 4, kStart, 2 * util::kHour),
                     {1, 2, 3, 4});
  }
  engine.advance(util::kHour);
  const auto& lu = cluster.node(0).state().lustre;
  return static_cast<double>(lu.mdc_wait_us) /
         static_cast<double>(lu.mdc_reqs);
}

TEST(MdsContention, StormInflatesVictimWait) {
  const double quiet = victim_wait(false);
  const double stormy = victim_wait(true);
  // Base WRF wait is ~150 us; a 4-node storm (~124k reqs/s) at the 100k
  // capacity should roughly double it.
  EXPECT_NEAR(quiet, 150.0, 15.0);
  EXPECT_GT(stormy, 1.7 * quiet);
  EXPECT_LT(stormy, 6.0 * quiet);
}

TEST(MdsContention, LoadTracksAggregateRate) {
  simhw::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.topology = simhw::Topology{2, 4, false};
  simhw::Cluster cluster(cc);
  Engine engine(cluster, kStart);
  EXPECT_DOUBLE_EQ(engine.mds_load_ps(), 0.0);
  engine.start_job(make_job(7, "wrf_mdstorm", 2, kStart, util::kHour),
                   {0, 1});
  engine.advance(10 * util::kMinute);
  // ~31k reqs/s per node on two nodes.
  EXPECT_NEAR(engine.mds_load_ps(), 62000.0, 20000.0);
  engine.end_job(7);
  engine.advance(2 * Engine::kQuantum);
  EXPECT_DOUBLE_EQ(engine.mds_load_ps(), 0.0);
}

TEST(MdsContention, WaitMetricReflectsContention) {
  // Through the full metric pipeline: the same victim job's MDCWait is
  // larger when it shares the engine with a storm.
  auto run = [](bool with_storm) {
    simhw::ClusterConfig cc;
    cc.num_nodes = with_storm ? 5 : 1;
    cc.topology = simhw::Topology{2, 4, false};
    simhw::Cluster cluster(cc);
    Engine engine(cluster, kStart);
    const auto victim = make_job(1, "wrf", 1, kStart, util::kHour);
    engine.start_job(victim, {0});
    if (with_storm) {
      engine.start_job(make_job(2, "wrf_mdstorm", 4, kStart, util::kHour),
                       {1, 2, 3, 4});
    }
    collect::HostSampler sampler(cluster.node(0));
    auto log = sampler.make_log();
    log.records.push_back(sampler.sample(kStart, {1}, "begin"));
    for (int s = 1; s <= 6; ++s) {
      engine.advance(10 * util::kMinute);
      log.records.push_back(
          sampler.sample(kStart + s * 10 * util::kMinute, {1}, ""));
    }
    const std::vector<collect::HostLog> logs = {log};
    const auto data = pipeline::extract_job(
        logs, to_accounting(victim, {cluster.node(0).hostname()}));
    return compute_metrics(data).MDCWait;
  };
  const double quiet = run(false);
  const double stormy = run(true);
  ASSERT_FALSE(std::isnan(quiet));
  ASSERT_FALSE(std::isnan(stormy));
  EXPECT_GT(stormy, 1.5 * quiet);
}

}  // namespace
}  // namespace tacc::workload
