// Concurrency audit for the modules PR 1 never exercised under
// ThreadSanitizer: the broker (multi-producer / multi-consumer with
// requeue and shutdown), the online analyzer (consumer-thread writes
// racing administrator reads), the raw archive (daemon-mode appends racing
// portal reads), and the logger. Run these under -DTACC_TSAN=ON (the CI
// tsan job does) — a data race in any of them silently corrupts the
// always-on monitoring plane the paper's workflows depend on.
//
// These tests pin the *dynamic* side of the discipline that the
// TACC_GUARDED_BY annotations (checked statically under
// -DTACC_THREAD_SAFETY=ON) declare; see docs/STATIC_ANALYSIS.md.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "collect/registry.hpp"
#include "core/online.hpp"
#include "simhw/node.hpp"
#include "transport/archive.hpp"
#include "transport/broker.hpp"
#include "util/log.hpp"

namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Broker: N publishers x M consumers, with every delivery acked and a
// fraction deliberately requeued once (the at-least-once redelivery path),
// while another thread polls depth()/stats(). Every published message must
// come out exactly once acked, and the counters must balance.
TEST(ConcurrencyAudit, BrokerMultiProducerMultiConsumer) {
  tacc::transport::Broker broker;
  broker.declare_queue("q");
  broker.bind("q", "stats.*");

  constexpr int kPublishers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerPublisher = 250;
  constexpr int kTotal = kPublishers * kPerPublisher;

  std::atomic<int> acked{0};
  std::atomic<int> requeued{0};

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&broker, &acked, &requeued] {
      while (true) {
        auto msg = broker.consume("q", 50ms);
        if (!msg) {
          if (broker.is_shut_down()) return;
          continue;
        }
        // Requeue every 7th delivery once to exercise redelivery; the
        // redelivered copy keeps its tag, so parity identifies it.
        if (msg->delivery_tag % 7 == 0 &&
            requeued.fetch_add(1) < kTotal / 7) {
          broker.requeue("q", msg->delivery_tag);
          continue;
        }
        broker.ack("q", msg->delivery_tag);
        if (acked.fetch_add(1) + 1 == kTotal) {
          broker.shutdown();
          return;
        }
      }
    });
  }

  std::vector<std::thread> publishers;
  publishers.reserve(kPublishers);
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&broker, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        const std::size_t routed = broker.publish(
            "stats.host" + std::to_string(p), "payload " + std::to_string(i));
        ASSERT_EQ(routed, 1u);
      }
    });
  }

  // Observer thread: depth()/stats() must be safely readable mid-flight.
  std::thread observer([&broker] {
    while (!broker.is_shut_down()) {
      (void)broker.depth("q");
      (void)broker.stats();
      std::this_thread::sleep_for(1ms);
    }
  });

  for (auto& t : publishers) t.join();
  for (auto& t : consumers) t.join();
  observer.join();

  EXPECT_EQ(acked.load(), kTotal);
  const auto stats = broker.stats();
  EXPECT_EQ(stats.published, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(stats.acked, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(stats.delivered, stats.acked + stats.redelivered);
  EXPECT_EQ(broker.depth("q"), 0u);
}

// Unroutable publishes racing bind() of new queues: bindings_ is mutated
// while publishers scan it.
TEST(ConcurrencyAudit, BrokerBindDuringPublish) {
  tacc::transport::Broker broker;
  broker.declare_queue("base");
  broker.bind("base", "#");

  std::atomic<bool> stop{false};
  std::thread binder([&broker, &stop] {
    for (int i = 0; i < 50 && !stop.load(); ++i) {
      const std::string q = "extra" + std::to_string(i);
      broker.declare_queue(q);
      broker.bind(q, "never.matches");
      std::this_thread::sleep_for(1ms);
    }
  });

  constexpr int kMsgs = 500;
  std::thread publisher([&broker] {
    for (int i = 0; i < kMsgs; ++i) {
      ASSERT_GE(broker.publish("k" + std::to_string(i % 13), "x"), 1u);
    }
  });

  publisher.join();
  stop.store(true);
  binder.join();
  EXPECT_EQ(broker.depth("base"), static_cast<std::size_t>(kMsgs));
  EXPECT_EQ(broker.stats().unroutable, 0u);
}

// ---------------------------------------------------------------------------
// OnlineAnalyzer: per-host chunks arriving from several "consumer" threads
// while the administrator thread polls alerts()/suspend_candidates()/
// records_analyzed(). A record pair crossing the metadata-storm threshold
// must fire exactly one alert per pair regardless of interleaving.
TEST(ConcurrencyAudit, OnlineAnalyzerConcurrentChunks) {
  tacc::simhw::NodeConfig nc;
  tacc::simhw::Node node(nc);
  tacc::collect::BuildOptions build;
  build.with_lustre = true;
  tacc::collect::HostSampler sampler(node, build);

  // One chunk per host, built serially up front (the sampler/node pair is
  // not a shared-use structure): two records whose mdc request delta is an
  // obvious storm (rate >> 20k/s).
  const auto make_chunk = [&sampler](const std::string& host) {
    tacc::collect::HostLog log = sampler.make_log();
    log.hostname = host;
    auto r1 = sampler.sample(1000 * tacc::util::kSecond, {101}, "");
    auto r2 = sampler.sample(1010 * tacc::util::kSecond, {101}, "");
    for (const auto& s : log.schemas) {
      if (s.type() != "mdc") continue;
      const auto ri = s.index_of("reqs");
      EXPECT_TRUE(ri.has_value()) << "mdc schema lost its reqs entry";
      if (!ri) continue;
      for (std::size_t b = 0; b < r2.blocks.size(); ++b) {
        if (r2.blocks[b].type != "mdc") continue;
        r2.blocks[b].values[*ri] =
            r1.blocks[b].values[*ri] + 1000000000ULL;
      }
    }
    log.records.push_back(std::move(r1));
    log.records.push_back(std::move(r2));
    return log;
  };

  tacc::core::OnlineAnalyzer analyzer;
  constexpr int kThreads = 4;
  constexpr int kHostsPerThread = 8;

  std::vector<std::vector<std::pair<std::string, tacc::collect::HostLog>>>
      per_thread(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int h = 0; h < kHostsPerThread; ++h) {
      const std::string host =
          "c4" + std::to_string(t) + "-" + std::to_string(h);
      per_thread[t].emplace_back(host, make_chunk(host));
    }
  }

  std::atomic<bool> stop{false};
  std::thread reader([&analyzer, &stop] {
    while (!stop.load()) {
      (void)analyzer.alerts();
      (void)analyzer.suspend_candidates();
      (void)analyzer.records_analyzed();
      std::this_thread::sleep_for(1ms);
    }
  });

  std::vector<std::thread> feeders;
  feeders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    feeders.emplace_back([&analyzer, &per_thread, t] {
      for (const auto& [host, chunk] : per_thread[t]) {
        analyzer.on_chunk(host, chunk);
      }
    });
  }
  for (auto& t : feeders) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(analyzer.records_analyzed(),
            static_cast<std::size_t>(kThreads * kHostsPerThread * 2));
  // Every host's second record crossed the threshold exactly once (other
  // rules may or may not fire on the idle-node baseline; count only ours).
  std::size_t storms = 0;
  for (const auto& alert : analyzer.alerts()) {
    storms += alert.rule == "metadata_storm" ? 1 : 0;
  }
  EXPECT_EQ(storms, static_cast<std::size_t>(kThreads * kHostsPerThread));
  EXPECT_EQ(analyzer.suspend_candidates(), std::set<long>{101});
}

// ---------------------------------------------------------------------------
// RawArchive: daemon-style appends from several threads racing log()/
// hosts()/total_records()/latency() snapshot reads.
TEST(ConcurrencyAudit, RawArchiveAppendVsSnapshot) {
  tacc::transport::RawArchive archive;
  constexpr int kWriters = 4;
  constexpr int kRecords = 200;

  std::atomic<bool> stop{false};
  std::thread reader([&archive, &stop] {
    while (!stop.load()) {
      for (const auto& host : archive.hosts()) {
        const auto log = archive.log(host);
        // Snapshot consistency: parallel arrays stay in lockstep.
        ASSERT_LE(log.records.size(), static_cast<std::size_t>(kRecords));
      }
      (void)archive.total_records();
      (void)archive.latency();
      std::this_thread::sleep_for(1ms);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&archive, w] {
      const std::string host = "n" + std::to_string(w);
      archive.add_header(host, "hsw", {});
      for (int i = 0; i < kRecords; ++i) {
        tacc::collect::Record rec;
        rec.time = static_cast<tacc::util::SimTime>(i) * tacc::util::kSecond;
        archive.append(host, rec, rec.time + tacc::util::kSecond);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(archive.total_records(),
            static_cast<std::size_t>(kWriters * kRecords));
  EXPECT_DOUBLE_EQ(archive.latency().mean(), 1.0);
}

// ---------------------------------------------------------------------------
// Logger: concurrent log_line + level flips must not race (whole lines are
// serialized onto stderr under an annotated mutex).
TEST(ConcurrencyAudit, LogLineConcurrent) {
  const auto prev = tacc::util::log_level();
  tacc::util::set_log_level(tacc::util::LogLevel::Off);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        tacc::util::log_line(tacc::util::LogLevel::Debug, "audit",
                             "t" + std::to_string(t));
        if (i % 50 == 0) {
          tacc::util::set_log_level(tacc::util::LogLevel::Off);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  tacc::util::set_log_level(prev);
}

}  // namespace
