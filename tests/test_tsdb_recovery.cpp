// Seeded crash-recovery matrix for the durable TSDB (the PR's tentpole
// proof): a scripted workload runs against a durable store whose fault
// plan kills it at one of the four persistence sites (wal.append,
// wal.sync, blockfile.write, compact.commit) in one of three lifecycle
// stages (WAL-only, sealed+flushed, mid-compaction). An in-memory mirror
// receives exactly the acknowledged batches; after the kill the directory
// is reopened CLEAN and must answer every probe query byte-identically to
// the mirror, with exact point conservation. Everything derives from the
// printed seed, so a failure replays exactly:
//   TACC_PERSIST_SEED=<seed> ./test_tsdb_recovery
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "tsdb/blockfile.hpp"
#include "tsdb/store.hpp"
#include "tsdb/wal.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace tacc::tsdb {
namespace {

namespace fs = std::filesystem;

constexpr util::SimTime kT0 = 1451606400LL * util::kSecond;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void expect_identical(const std::vector<SeriesResult>& a,
                      const std::vector<SeriesResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].group_tags, b[i].group_tags);
    ASSERT_EQ(a[i].points.size(), b[i].points.size()) << "series " << i;
    for (std::size_t p = 0; p < a[i].points.size(); ++p) {
      EXPECT_EQ(a[i].points[p].time, b[i].points[p].time);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].points[p].value),
                std::bit_cast<std::uint64_t>(b[i].points[p].value))
          << "series " << i << " point " << p;
    }
  }
}

enum class Stage { WalOnly, Sealed, MidCompaction };

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::WalOnly:
      return "wal_only";
    case Stage::Sealed:
      return "sealed";
    case Stage::MidCompaction:
      return "mid_compaction";
  }
  return "?";
}

struct SeriesId {
  std::string metric;
  TagSet tags;
};

std::vector<SeriesId> series_universe() {
  std::vector<SeriesId> u;
  for (int h = 0; h < 3; ++h) {
    const std::string host = "c400-00" + std::to_string(h);
    u.push_back({"taccstats.cpu.user", {{"host", host}}});
    u.push_back({"taccstats.llite.open", {{"host", host}, {"fs", "work"}}});
  }
  return u;
}

std::vector<Query> probe_queries() {
  std::vector<Query> qs;
  for (const char* metric : {"taccstats.cpu.user", "taccstats.llite.open"}) {
    {
      Query q;
      q.metric = metric;
      qs.push_back(q);
    }
    {
      Query q;
      q.metric = metric;
      q.group_by = {"host"};
      q.downsample = 5 * util::kMinute;
      q.downsample_aggregator = Aggregator::Max;
      qs.push_back(q);
    }
    {
      Query q;
      q.metric = metric;
      q.downsample = util::kHour;
      q.downsample_aggregator = Aggregator::Count;
      qs.push_back(q);
    }
  }
  return qs;
}

/// One matrix cell. The fault plan is live only during the damage phase;
/// the reopen is always clean. Whether the workload actually crashed is
/// seed-dependent — a clean completion is just the easy diagonal of the
/// same invariant.
void run_cell(std::uint64_t seed, std::string_view site, Stage stage) {
  SCOPED_TRACE(std::string("seed=") + std::to_string(seed) + " site=" +
               std::string(site) + " stage=" + stage_name(stage));
  const std::string dir =
      fresh_dir("recover_" + std::string(site.substr(site.find('.') + 1)) +
                "_" + stage_name(stage) + "_" + std::to_string(seed));

  auto faults = std::make_shared<util::FaultPlan>(seed);
  {
    util::FaultSpec spec;
    // WAL sites are consulted on every append: a low rate kills at a
    // pseudorandom operation mid-run. File-level sites fire a handful of
    // times per run, so they need a high rate to kill at all.
    spec.error_rate =
        (site == util::kFaultWalAppend || site == util::kFaultWalSync)
            ? 0.01
            : 0.6;
    faults->set(site, spec);
  }

  StoreOptions o;
  o.data_dir = dir;
  o.shards = 4;
  o.block_points = 16;
  o.wal_sync =
      site == util::kFaultWalSync ? WalSync::Always : WalSync::OnFlush;
  o.faults = faults;

  Store mirror;  // in-memory; receives acknowledged batches only
  bool crashed = false;
  std::size_t acked_batches = 0;
  {
    const auto universe = series_universe();
    util::Rng rng("persist.matrix", seed);
    std::vector<util::SimTime> clocks(universe.size(), kT0);
    try {
      // Construction can crash too (the fresh-directory manifest write
      // consults blockfile.write): that is just the earliest kill point.
      Store s(o);
      for (int op = 0; op < 400; ++op) {
        const auto si = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(universe.size()) - 1));
        const SeriesId& id = universe[si];
        std::vector<DataPoint> batch;
        const int n = static_cast<int>(rng.uniform_int(1, 6));
        for (int i = 0; i < n; ++i) {
          clocks[si] += rng.uniform_int(1, 90) * util::kSecond;
          double v = rng.uniform(0.0, 1.0e6);
          if (rng.uniform_int(0, 39) == 0) {
            v = std::numeric_limits<double>::quiet_NaN();
          }
          batch.push_back({clocks[si], v});
        }
        if (n > 1 && rng.uniform_int(0, 4) == 0) {
          std::swap(batch[0], batch[1]);  // out-of-order inside the batch
        }
        s.put_batch(id.metric, id.tags, batch);
        // The put returned: it is acknowledged, the mirror must have it.
        mirror.put_batch(id.metric, id.tags, batch);
        ++acked_batches;

        if (stage != Stage::WalOnly && op == 150) {
          s.seal_all();
          s.flush();
        }
        if (stage == Stage::MidCompaction && op == 250) {
          s.seal_all();
          s.flush();
          s.compact();
        }
      }
      if (stage != Stage::WalOnly) {
        s.seal_all();
        s.flush();
        if (stage == Stage::MidCompaction) s.compact();
      }
    } catch (const InjectedCrash&) {
      crashed = true;  // the store is dead; its dtor is the process kill
    }
  }

  // Clean reopen: same directory, no fault plan.
  StoreOptions ro;
  ro.data_dir = dir;
  ro.shards = 4;
  ro.block_points = 16;
  {
    Store r(ro);
    EXPECT_EQ(r.num_points(), mirror.num_points())
        << "point conservation after "
        << (crashed ? "an injected kill" : "a clean run") << " ("
        << acked_batches << " acknowledged batches)";
    for (const Query& q : probe_queries()) {
      expect_identical(r.query(q), mirror.query(q));
    }
    // dtor'd crash-style again (no close): the next open must replay the
    // generation recovery just rotated, losing nothing.
  }
  {
    Store r2(ro);
    EXPECT_EQ(r2.num_points(), mirror.num_points());
    for (const Query& q : probe_queries()) {
      expect_identical(r2.query(q), mirror.query(q));
    }
  }
}

std::vector<std::uint64_t> matrix_seeds() {
  if (const char* env = std::getenv("TACC_PERSIST_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {20160104u, 31337u, 987654u};
}

TEST(TsdbRecovery, KillMatrixRecoversByteIdentical) {
  constexpr std::string_view kSites[] = {
      util::kFaultWalAppend,
      util::kFaultWalSync,
      util::kFaultBlockFileWrite,
      util::kFaultCompactCommit,
  };
  constexpr Stage kStages[] = {Stage::WalOnly, Stage::Sealed,
                               Stage::MidCompaction};
  for (const std::uint64_t seed : matrix_seeds()) {
    for (const std::string_view site : kSites) {
      for (const Stage stage : kStages) {
        run_cell(seed, site, stage);
        if (::testing::Test::HasFatalFailure() ||
            ::testing::Test::HasNonfatalFailure()) {
          FAIL() << "matrix cell failed; replay with TACC_PERSIST_SEED="
                 << seed << " (site=" << site << ", stage="
                 << stage_name(stage) << ")";
        }
      }
    }
  }
}

// A crash during WAL *rotation* (flush's second half) must fall back to
// the previous generation without losing acknowledged points. Targeted
// separately because the matrix only hits it when the append-site dice
// land inside rotate_wal.
TEST(TsdbRecovery, KillDuringRotationFallsBackToPreviousGeneration) {
  for (const std::uint64_t seed : matrix_seeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string dir = fresh_dir("recover_rot_" + std::to_string(seed));
    Store mirror;
    {
      StoreOptions o;
      o.data_dir = dir;
      o.shards = 1;  // one WAL: rotation is the only post-load writer
      o.block_points = 8;
      Store s(o);
      std::vector<DataPoint> pts;
      for (int i = 0; i < 50; ++i) {
        pts.push_back({kT0 + i * util::kMinute, 3.5 * i});
      }
      s.put_batch("taccstats.cpu.user", {{"host", "c400-000"}}, pts);
      mirror.put_batch("taccstats.cpu.user", {{"host", "c400-000"}}, pts);
      s.seal_all();
      s.flush();
    }
    // A second store — opened with an always-crash append plan — dies
    // inside recovery's own rotation, leaving a torn new generation whose
    // checkpoint never completed. The next open must ignore it and fall
    // back to the previous generation.
    {
      auto faults = std::make_shared<util::FaultPlan>(seed);
      util::FaultSpec spec;
      spec.error_rate = 1.0;
      faults->set(util::kFaultWalAppend, spec);
      StoreOptions o;
      o.data_dir = dir;
      o.shards = 1;
      o.block_points = 8;
      o.faults = faults;
      EXPECT_THROW(Store{o}, InjectedCrash);
    }
    Store r = Store::open(dir);
    EXPECT_EQ(r.num_points(), mirror.num_points());
    Query q;
    q.metric = "taccstats.cpu.user";
    expect_identical(r.query(q), mirror.query(q));
  }
}

}  // namespace
}  // namespace tacc::tsdb
