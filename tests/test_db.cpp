// Embedded relational store: values, typing, predicates, indexes,
// aggregates.
#include <gtest/gtest.h>

#include "db/table.hpp"
#include "util/rng.hpp"

namespace tacc::db {
namespace {

Table people() {
  Table t("people", {{"id", ValueType::Int},
                     {"name", ValueType::Text},
                     {"score", ValueType::Real}});
  t.insert({1, "alice", 3.5});
  t.insert({2, "bob", 1.0});
  t.insert({3, "carol", 4.25});
  t.insert({4, "bob", 2.0});
  return t;
}

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::Null);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(5).type(), ValueType::Int);
  EXPECT_EQ(Value(5).as_int(), 5);
  EXPECT_DOUBLE_EQ(Value(5).as_real(), 5.0);
  EXPECT_EQ(Value(2.5).type(), ValueType::Real);
  EXPECT_EQ(Value(2.5).as_int(), 2);
  EXPECT_EQ(Value("x").type(), ValueType::Text);
  EXPECT_EQ(Value(std::string("y")).as_text(), "y");
  EXPECT_EQ(Value("z").as_real(), 0.0);
}

TEST(Value, CrossNumericComparison) {
  EXPECT_EQ(Value(2).compare(Value(2.0)), 0);
  EXPECT_LT(Value(2).compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.1).compare(Value(3)), 0);
}

TEST(Value, OrderingAcrossTypes) {
  EXPECT_LT(Value().compare(Value(0)), 0);        // null first
  EXPECT_LT(Value(999).compare(Value("a")), 0);   // numerics before text
  EXPECT_LT(Value("a").compare(Value("b")), 0);
  EXPECT_EQ(Value().compare(Value()), 0);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value().to_string(), "NULL");
  EXPECT_EQ(Value(42).to_string(), "42");
  EXPECT_EQ(Value("hi").to_string(), "hi");
}

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table("x", {}), std::invalid_argument);
}

TEST(Table, InsertTypeChecks) {
  Table t("t", {{"i", ValueType::Int}, {"r", ValueType::Real}});
  EXPECT_NO_THROW(t.insert({1, 2.0}));
  EXPECT_NO_THROW(t.insert({1, 2}));        // int coerces to real
  EXPECT_NO_THROW(t.insert({Value(), Value()}));  // nulls allowed
  EXPECT_THROW(t.insert({1.5, 2.0}), std::invalid_argument);  // real->int no
  EXPECT_THROW(t.insert({"x", 2.0}), std::invalid_argument);
  EXPECT_THROW(t.insert({1}), std::invalid_argument);  // arity
}

TEST(Table, IntCoercionStoresReal) {
  Table t("t", {{"r", ValueType::Real}});
  const auto id = t.insert({7});
  EXPECT_EQ(t.row(id)[0].type(), ValueType::Real);
  EXPECT_DOUBLE_EQ(t.row(id)[0].as_real(), 7.0);
}

TEST(Table, ColumnLookup) {
  const auto t = people();
  EXPECT_EQ(t.column_index("name"), 1u);
  EXPECT_THROW(t.column_index("missing"), std::out_of_range);
  EXPECT_FALSE(t.find_column("missing").has_value());
}

TEST(Table, SelectEveryOperator) {
  const auto t = people();
  EXPECT_EQ(t.select({{"name", Op::Eq, Value("bob")}}).size(), 2u);
  EXPECT_EQ(t.select({{"name", Op::Ne, Value("bob")}}).size(), 2u);
  EXPECT_EQ(t.select({{"score", Op::Lt, Value(2.0)}}).size(), 1u);
  EXPECT_EQ(t.select({{"score", Op::Lte, Value(2.0)}}).size(), 2u);
  EXPECT_EQ(t.select({{"score", Op::Gt, Value(3.5)}}).size(), 1u);
  EXPECT_EQ(t.select({{"score", Op::Gte, Value(3.5)}}).size(), 2u);
  EXPECT_EQ(t.select({{"name", Op::Contains, Value("aro")}}).size(), 1u);
}

TEST(Table, SelectConjunction) {
  const auto t = people();
  const auto rows = t.select(
      {{"name", Op::Eq, Value("bob")}, {"score", Op::Gt, Value(1.5)}});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(t.at(rows[0], "id").as_int(), 4);
}

TEST(Table, EmptyPredicatesSelectAll) {
  const auto t = people();
  EXPECT_EQ(t.select({}).size(), 4u);
}

TEST(Table, IndexMatchesScanOnEverything) {
  // Property: indexed selection == unindexed selection for all ops.
  util::Rng rng("db.prop", 11);
  Table plain("plain", {{"k", ValueType::Int}, {"v", ValueType::Real}});
  Table indexed("indexed", {{"k", ValueType::Int}, {"v", ValueType::Real}});
  for (int i = 0; i < 500; ++i) {
    const auto k = rng.uniform_int(0, 50);
    const double v = rng.uniform(0.0, 10.0);
    plain.insert({k, v});
    indexed.insert({k, v});
  }
  indexed.create_index("k");
  ASSERT_TRUE(indexed.has_index("k"));
  for (const Op op : {Op::Eq, Op::Ne, Op::Lt, Op::Lte, Op::Gt, Op::Gte}) {
    for (int probe = 0; probe <= 50; probe += 7) {
      const std::vector<Predicate> preds = {{"k", op, Value(probe)}};
      EXPECT_EQ(indexed.select(preds), plain.select(preds))
          << "op=" << static_cast<int>(op) << " probe=" << probe;
    }
  }
}

TEST(Table, IndexCreatedAfterInsertsAndMaintained) {
  Table t("t", {{"k", ValueType::Int}});
  t.insert({1});
  t.create_index("k");
  t.insert({1});
  t.insert({2});
  EXPECT_EQ(t.select({{"k", Op::Eq, Value(1)}}).size(), 2u);
  EXPECT_EQ(t.select({{"k", Op::Eq, Value(2)}}).size(), 1u);
}

TEST(Table, Aggregates) {
  const auto t = people();
  const auto all = t.select({});
  EXPECT_DOUBLE_EQ(t.aggregate(Agg::Count, "score", all), 4.0);
  EXPECT_DOUBLE_EQ(t.aggregate(Agg::Sum, "score", all), 10.75);
  EXPECT_DOUBLE_EQ(t.aggregate(Agg::Avg, "score", all), 10.75 / 4.0);
  EXPECT_DOUBLE_EQ(t.aggregate(Agg::Min, "score", all), 1.0);
  EXPECT_DOUBLE_EQ(t.aggregate(Agg::Max, "score", all), 4.25);
}

TEST(Table, AggregatesSkipNulls) {
  Table t("t", {{"v", ValueType::Real}});
  t.insert({1.0});
  t.insert({Value()});
  t.insert({3.0});
  const auto all = t.select({});
  EXPECT_DOUBLE_EQ(t.aggregate(Agg::Avg, "v", all), 2.0);
  EXPECT_DOUBLE_EQ(t.aggregate(Agg::Count, "v", all), 3.0);  // count rows
  EXPECT_EQ(t.column_values("v", all).size(), 2u);           // nulls dropped
}

TEST(Table, AggregateEmptySelection) {
  const auto t = people();
  EXPECT_DOUBLE_EQ(t.aggregate(Agg::Avg, "score", {}), 0.0);
  EXPECT_DOUBLE_EQ(t.aggregate(Agg::Count, "score", {}), 0.0);
}

TEST(Table, AggregateWhere) {
  const auto t = people();
  EXPECT_DOUBLE_EQ(
      t.aggregate_where(Agg::Avg, "score", {{"name", Op::Eq, Value("bob")}}),
      1.5);
}

TEST(Database, TableManagement) {
  Database database;
  database.create_table("a", {{"x", ValueType::Int}});
  EXPECT_TRUE(database.has_table("a"));
  EXPECT_FALSE(database.has_table("b"));
  EXPECT_THROW(database.create_table("a", {{"x", ValueType::Int}}),
               std::invalid_argument);
  EXPECT_THROW(database.table("b"), std::out_of_range);
  database.table("a").insert({1});
  EXPECT_EQ(database.table("a").num_rows(), 1u);
}

}  // namespace
}  // namespace tacc::db
