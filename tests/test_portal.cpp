// Portal: search-field grammar, query compilation, views, histograms,
// reports.
#include <gtest/gtest.h>

#include "pipeline/ingest.hpp"
#include "portal/report.hpp"
#include "portal/search.hpp"
#include "portal/views.hpp"

namespace tacc::portal {
namespace {

using pipeline::JobMetrics;

db::Database& populated(db::Database& database) {
  auto& jobs = pipeline::create_jobs_table(database);
  auto insert = [&](long id, const char* user, const char* exe,
                    const char* queue, double cpu, double mdr,
                    util::SimTime start, double runtime_s,
                    const std::vector<pipeline::Flag>& flags = {}) {
    workload::AccountingRecord a;
    a.jobid = id;
    a.user = user;
    a.exe = exe;
    a.jobname = "run";
    a.queue = queue;
    a.status = "COMPLETED";
    a.nodes = 4;
    a.wayness = 16;
    a.submit_time = start - util::kMinute;
    a.start_time = start;
    a.end_time = start + util::from_seconds(runtime_s);
    JobMetrics m;
    m.CPU_Usage = cpu;
    m.MetaDataRate = mdr;
    m.MemUsage = 5.0;
    pipeline::ingest_job(jobs, a, m, flags);
  };
  const auto day = util::make_time(2016, 1, 4);
  insert(1, "alice", "wrf.exe", "normal", 0.8, 1000.0, day, 7200);
  insert(2, "bob", "wrf.exe", "normal", 0.6, 600000.0,
         day + 2 * util::kHour, 3600,
         {{"high_metadata_rate", "storm"}});
  insert(3, "alice", "namd2", "normal", 0.9, 100.0, day + util::kDay, 600);
  insert(4, "carol", "R", "largemem", 0.5, 50.0, day, 5400);
  return database;
}

TEST(Search, ParseFieldOperators) {
  auto p = parse_search_field("MetaDataRate__gte=1000");
  EXPECT_EQ(p.column, "MetaDataRate");
  EXPECT_EQ(p.op, db::Op::Gte);
  EXPECT_DOUBLE_EQ(p.rhs.as_real(), 1000.0);
  EXPECT_EQ(parse_search_field("cpi__lt=2").op, db::Op::Lt);
  EXPECT_EQ(parse_search_field("x__lte=2").op, db::Op::Lte);
  EXPECT_EQ(parse_search_field("x__gt=2").op, db::Op::Gt);
  EXPECT_EQ(parse_search_field("x__ne=2").op, db::Op::Ne);
  EXPECT_EQ(parse_search_field("x__eq=2").op, db::Op::Eq);
  EXPECT_EQ(parse_search_field("flags__contains=idle").op,
            db::Op::Contains);
}

TEST(Search, DefaultOpIsEq) {
  const auto p = parse_search_field("user=alice");
  EXPECT_EQ(p.op, db::Op::Eq);
  EXPECT_EQ(p.rhs.as_text(), "alice");
}

TEST(Search, NumericVsTextValues) {
  EXPECT_EQ(parse_search_field("a=1.5").rhs.type(), db::ValueType::Real);
  EXPECT_EQ(parse_search_field("a=abc").rhs.type(), db::ValueType::Text);
}

TEST(Search, MalformedFieldsThrow) {
  EXPECT_THROW(parse_search_field("noequals"), std::invalid_argument);
  EXPECT_THROW(parse_search_field("=5"), std::invalid_argument);
  EXPECT_THROW(parse_search_field("a__bogus=5"), std::invalid_argument);
}

TEST(Search, RunQueryCombinesMetadataAndFields) {
  db::Database database;
  const auto& jobs = populated(database).table(pipeline::kJobsTable);
  PortalQuery q;
  q.exe = "wrf.exe";
  q.date_start = util::make_time(2016, 1, 4);
  q.date_end = util::make_time(2016, 1, 5);
  q.min_runtime_s = 600.0;  // "over 10 minutes in runtime"
  q.search_fields = {"MetaDataRate__gte=100000"};
  const auto rows = run_query(jobs, q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(jobs.at(rows[0], "jobid").as_int(), 2);
}

TEST(Search, JobIdLookup) {
  db::Database database;
  const auto& jobs = populated(database).table(pipeline::kJobsTable);
  PortalQuery q;
  q.jobid = 3;
  const auto rows = run_query(jobs, q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(jobs.at(rows[0], "exe").as_text(), "namd2");
}

TEST(Search, QueueAndUserFilters) {
  db::Database database;
  const auto& jobs = populated(database).table(pipeline::kJobsTable);
  PortalQuery q;
  q.queue = "largemem";
  EXPECT_EQ(run_query(jobs, q).size(), 1u);
  PortalQuery q2;
  q2.user = "alice";
  EXPECT_EQ(run_query(jobs, q2).size(), 2u);
}

TEST(Views, JobListShowsMetadata) {
  db::Database database;
  const auto& jobs = populated(database).table(pipeline::kJobsTable);
  const auto rows = jobs.select({});
  const auto view = job_list_view(jobs, rows);
  EXPECT_NE(view.find("4 jobs matched"), std::string::npos);
  EXPECT_NE(view.find("alice"), std::string::npos);
  EXPECT_NE(view.find("wrf.exe"), std::string::npos);
  EXPECT_NE(view.find("largemem"), std::string::npos);
  EXPECT_NE(view.find("2h 00m 00s"), std::string::npos);
}

TEST(Views, JobListHonorsLimit) {
  db::Database database;
  const auto& jobs = populated(database).table(pipeline::kJobsTable);
  const auto rows = jobs.select({});
  const auto view = job_list_view(jobs, rows, 2);
  EXPECT_NE(view.find("showing first 2"), std::string::npos);
  EXPECT_EQ(view.find("carol"), std::string::npos);
}

TEST(Views, FlaggedSublist) {
  db::Database database;
  const auto& jobs = populated(database).table(pipeline::kJobsTable);
  const auto rows = jobs.select({});
  EXPECT_EQ(flagged_rows(jobs, rows).size(), 1u);
  const auto view = flagged_sublist(jobs, rows);
  EXPECT_NE(view.find("1 flagged jobs"), std::string::npos);
  EXPECT_NE(view.find("high_metadata_rate"), std::string::npos);
  EXPECT_NE(view.find("bob"), std::string::npos);
}

TEST(Views, DetailShowsMetricsAndNa) {
  db::Database database;
  const auto& jobs = populated(database).table(pipeline::kJobsTable);
  const auto rows = jobs.select({{"jobid", db::Op::Eq, db::Value(2)}});
  const auto view = job_detail_view(jobs, rows.front());
  EXPECT_NE(view.find("Job 2 (bob, wrf.exe)"), std::string::npos);
  EXPECT_NE(view.find("MetaDataRate"), std::string::npos);
  EXPECT_NE(view.find("6e+05"), std::string::npos);  // 600000 at %.5g
  EXPECT_NE(view.find("n/a"), std::string::npos);     // NULL metrics
  EXPECT_NE(view.find("high_metadata_rate"), std::string::npos);
}

TEST(Views, HistogramsHaveFourPanels) {
  db::Database database;
  const auto& jobs = populated(database).table(pipeline::kJobsTable);
  const auto text = query_histograms(jobs, jobs.select({}));
  EXPECT_NE(text.find("Run time (hours)"), std::string::npos);
  EXPECT_NE(text.find("Nodes"), std::string::npos);
  EXPECT_NE(text.find("Queue wait time (hours)"), std::string::npos);
  EXPECT_NE(text.find("Max metadata reqs"), std::string::npos);
}

TEST(Report, PopulationSummaryPercentages) {
  db::Database database;
  const auto& jobs = populated(database).table(pipeline::kJobsTable);
  const auto text = population_summary(jobs, jobs.select({}));
  EXPECT_NE(text.find("4 jobs, 1 flagged (25%)"), std::string::npos);
  EXPECT_NE(text.find("high_metadata_rate"), std::string::npos);
  EXPECT_NE(text.find("CPU_Usage"), std::string::npos);
}

TEST(Report, DailyReportFiltersByDay) {
  db::Database database;
  const auto& jobs = populated(database).table(pipeline::kJobsTable);
  const auto text = daily_report(jobs, util::make_time(2016, 1, 4));
  EXPECT_NE(text.find("3 jobs"), std::string::npos);  // job 3 is next day
  EXPECT_NE(text.find("2016-01-04"), std::string::npos);
}

}  // namespace
}  // namespace tacc::portal
