// ORDER BY/LIMIT in the store, date browsing in the portal, OSS queueing
// in the engine, and the tsdb rate() conversion.
#include <gtest/gtest.h>

#include "pipeline/ingest.hpp"
#include "portal/search.hpp"
#include "tsdb/store.hpp"
#include "workload/engine.hpp"
#include "workload/generator.hpp"

namespace tacc {
namespace {

TEST(SelectOrdered, SortsAndLimits) {
  db::Table t("t", {{"k", db::ValueType::Int},
                    {"v", db::ValueType::Real}});
  t.insert({3, 1.0});
  t.insert({1, 2.0});
  t.insert({2, 3.0});
  t.insert({1, 4.0});  // ties keep insertion order (stable sort)
  const auto asc = t.select_ordered({}, "k");
  ASSERT_EQ(asc.size(), 4u);
  EXPECT_EQ(t.at(asc[0], "v").as_real(), 2.0);
  EXPECT_EQ(t.at(asc[1], "v").as_real(), 4.0);
  EXPECT_EQ(t.at(asc[3], "k").as_int(), 3);
  const auto desc = t.select_ordered({}, "k", true, 2);
  ASSERT_EQ(desc.size(), 2u);
  EXPECT_EQ(t.at(desc[0], "k").as_int(), 3);
  EXPECT_EQ(t.at(desc[1], "k").as_int(), 2);
}

TEST(SelectOrdered, WithPredicates) {
  db::Table t("t", {{"k", db::ValueType::Int}});
  for (int i = 0; i < 10; ++i) t.insert({i});
  const auto rows = t.select_ordered(
      {{"k", db::Op::Gte, db::Value(5)}}, "k", true, 3);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(t.at(rows[0], "k").as_int(), 9);
  EXPECT_EQ(t.at(rows[2], "k").as_int(), 7);
}

TEST(BrowseDate, NewestFirstWithinDay) {
  db::Database database;
  auto& jobs = pipeline::create_jobs_table(database);
  auto add = [&](long id, util::SimTime start) {
    workload::AccountingRecord a;
    a.jobid = id;
    a.user = "u";
    a.exe = "x";
    a.queue = "normal";
    a.status = "COMPLETED";
    a.nodes = 1;
    a.start_time = start;
    a.end_time = start + util::kHour;
    pipeline::ingest_job(jobs, a, pipeline::JobMetrics{}, {});
  };
  const auto day = util::make_time(2016, 1, 9);
  add(1, day + 8 * util::kHour);
  add(2, day + 20 * util::kHour);
  add(3, day - util::kHour);        // previous day
  add(4, day + util::kDay);         // next day
  const auto rows = portal::browse_date(jobs, day + 13 * util::kHour);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(jobs.at(rows[0], "jobid").as_int(), 2);  // newest first
  EXPECT_EQ(jobs.at(rows[1], "jobid").as_int(), 1);
}

TEST(OssContention, StormlikeOscLoadInflatesWait) {
  auto run = [](bool with_hog) {
    simhw::ClusterConfig cc;
    cc.num_nodes = with_hog ? 9 : 1;
    cc.topology = simhw::Topology{2, 4, false};
    simhw::Cluster cluster(cc);
    workload::Engine engine(cluster, 0);
    workload::JobSpec victim;
    victim.jobid = 1;
    victim.profile = "wrf";
    victim.exe = "wrf.exe";
    victim.nodes = 1;
    victim.wayness = 8;
    victim.start_time = 0;
    victim.end_time = 2 * util::kHour;
    engine.start_job(victim, {0});
    if (with_hog) {
      workload::JobSpec hog;
      hog.jobid = 2;
      hog.profile = "genomics_io";  // ~260 OSS reqs/s/node
      hog.exe = "blastn";
      hog.nodes = 8;
      hog.wayness = 8;
      hog.start_time = 0;
      hog.end_time = 2 * util::kHour;
      hog.io_mult = 20.0;  // a pathological OSS load (~42k reqs/s total)
      engine.start_job(hog, {1, 2, 3, 4, 5, 6, 7, 8});
    }
    engine.advance(util::kHour);
    const auto& lu = cluster.node(0).state().lustre;
    std::uint64_t reqs = 0;
    std::uint64_t wait = 0;
    for (int i = 0; i < simhw::LustreState::kNumOsts; ++i) {
      reqs += lu.osc_reqs[i];
      wait += lu.osc_wait_us[i];
    }
    return static_cast<double>(wait) / static_cast<double>(reqs);
  };
  const double quiet = run(false);
  const double loaded = run(true);
  EXPECT_NEAR(quiet, 600.0, 60.0);  // wrf base OSS wait
  EXPECT_GT(loaded, 1.6 * quiet);
}

TEST(TsdbRate, ConvertsCumulativeToRates) {
  tsdb::Store store;
  // Cumulative counter: +600 per minute -> 10/s.
  for (int i = 0; i < 5; ++i) {
    store.put("ctr", {{"host", "h"}}, i * util::kMinute, i * 600.0);
  }
  tsdb::Query q;
  q.metric = "ctr";
  q.rate = true;
  const auto results = store.query(q);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].points.size(), 4u);  // n-1 rate points
  for (const auto& p : results[0].points) {
    EXPECT_DOUBLE_EQ(p.value, 10.0);
  }
}

TEST(TsdbRate, CounterResetClampsToZero) {
  tsdb::Store store;
  store.put("ctr", {}, 0, 1000.0);
  store.put("ctr", {}, util::kMinute, 1600.0);
  store.put("ctr", {}, 2 * util::kMinute, 50.0);  // reset (node reboot)
  tsdb::Query q;
  q.metric = "ctr";
  q.rate = true;
  const auto results = store.query(q);
  ASSERT_EQ(results[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(results[0].points[0].value, 10.0);
  EXPECT_DOUBLE_EQ(results[0].points[1].value, 0.0);
}

TEST(TsdbRate, ComposesWithDownsampleAndGroupBy) {
  tsdb::Store store;
  for (const char* host : {"h1", "h2"}) {
    for (int i = 0; i < 11; ++i) {
      store.put("ctr", {{"host", host}}, i * util::kMinute, i * 60.0);
    }
  }
  tsdb::Query q;
  q.metric = "ctr";
  q.rate = true;
  q.downsample = 5 * util::kMinute;
  q.aggregator = tsdb::Aggregator::Sum;  // across the two hosts
  const auto results = store.query(q);
  ASSERT_EQ(results.size(), 1u);
  for (const auto& p : results[0].points) {
    EXPECT_DOUBLE_EQ(p.value, 2.0);  // 1/s per host, summed
  }
}

}  // namespace
}  // namespace tacc
