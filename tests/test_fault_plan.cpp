// The fault-injection subsystem: FaultPlan decision determinism, per-site
// isolation, outage windows — and the transport-layer behaviors it drives
// (broker drop/duplicate/delay/dead-letter, daemon retry + spool + replay,
// cron rsync/disk faults with catch-up).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "simhw/cluster.hpp"
#include "transport/consumer.hpp"
#include "transport/cron.hpp"
#include "transport/daemon.hpp"
#include "util/fault.hpp"

namespace tacc {
namespace {

using transport::Broker;
using transport::PublishInfo;
using util::FaultPlan;
using util::FaultSpec;

constexpr util::SimTime kMidnight = 1451606400LL * util::kSecond;

simhw::Cluster small_cluster(int n = 1) {
  simhw::ClusterConfig cc;
  cc.num_nodes = n;
  cc.topology = simhw::Topology{1, 2, false};
  cc.phi_fraction = 0.0;
  return simhw::Cluster(cc);
}

TEST(FaultPlan, EmptyPlanDecidesNothing) {
  FaultPlan plan(7);
  const auto d = plan.decide("broker.publish", "host", 1, kMidnight);
  EXPECT_FALSE(d.any());
  EXPECT_EQ(plan.spec("broker.publish"), nullptr);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, DecisionsAreDeterministic) {
  FaultPlan plan(42);
  FaultSpec spec;
  spec.drop_rate = 0.5;
  spec.duplicate_rate = 0.3;
  spec.delay_rate = 0.4;
  spec.delay_min = util::kSecond;
  spec.delay_max = 10 * util::kSecond;
  plan.set("broker.publish", spec);
  for (std::uint64_t salt = 0; salt < 200; ++salt) {
    const auto a = plan.decide("broker.publish", "c400-001", salt, kMidnight);
    const auto b = plan.decide("broker.publish", "c400-001", salt, kMidnight);
    EXPECT_EQ(a.drop, b.drop);
    EXPECT_EQ(a.duplicate, b.duplicate);
    EXPECT_EQ(a.delay, b.delay);
  }
}

TEST(FaultPlan, SeedAndKeyChangeOutcomes) {
  FaultSpec spec;
  spec.drop_rate = 0.5;
  FaultPlan a(1);
  FaultPlan b(2);
  a.set("broker.publish", spec);
  b.set("broker.publish", spec);
  int diff_seed = 0;
  int diff_key = 0;
  for (std::uint64_t salt = 0; salt < 500; ++salt) {
    diff_seed += a.decide("broker.publish", "h", salt, 0).drop !=
                 b.decide("broker.publish", "h", salt, 0).drop;
    diff_key += a.decide("broker.publish", "h", salt, 0).drop !=
                a.decide("broker.publish", "g", salt, 0).drop;
  }
  EXPECT_GT(diff_seed, 50);
  EXPECT_GT(diff_key, 50);
}

TEST(FaultPlan, RatesRoughlyRespected) {
  FaultPlan plan(99);
  FaultSpec spec;
  spec.drop_rate = 0.25;
  plan.set("broker.publish", spec);
  int drops = 0;
  const int n = 4000;
  for (std::uint64_t salt = 0; salt < n; ++salt) {
    drops += plan.decide("broker.publish", "h", salt, 0).drop;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.25, 0.03);
}

TEST(FaultPlan, OutageWindowForcesErrors) {
  FaultPlan plan(5);
  FaultSpec spec;
  spec.outages.push_back({kMidnight, kMidnight + util::kHour});
  plan.set("daemon.publish", spec);
  EXPECT_TRUE(plan.decide("daemon.publish", "h", 1, kMidnight).error);
  EXPECT_TRUE(
      plan.decide("daemon.publish", "h", 1, kMidnight + util::kMinute).error);
  EXPECT_FALSE(
      plan.decide("daemon.publish", "h", 1, kMidnight + util::kHour).error);
  EXPECT_FALSE(plan.decide("daemon.publish", "h", 1, kMidnight - 1).error);
}

TEST(FaultPlan, SitesAreIndependent) {
  FaultPlan plan(5);
  FaultSpec spec;
  spec.drop_rate = 1.0;
  plan.set("broker.publish", spec);
  EXPECT_TRUE(plan.decide("broker.publish", "h", 1, 0).drop);
  EXPECT_FALSE(plan.decide("daemon.publish", "h", 1, 0).any());
  EXPECT_EQ(plan.sites(), std::vector<std::string>{"broker.publish"});
}

TEST(Broker, InjectedDropFailsThePublish) {
  Broker broker;
  broker.bind("q", "#");
  auto plan = std::make_shared<FaultPlan>(3);
  FaultSpec spec;
  spec.drop_rate = 1.0;
  plan->set("broker.publish", spec);
  broker.set_fault_plan(plan);
  PublishInfo info;
  info.producer = "h";
  info.seq = 1;
  EXPECT_EQ(broker.publish("k", "body", info), 0u);
  EXPECT_EQ(broker.depth("q"), 0u);
  EXPECT_EQ(broker.stats().resilience.injected_drops, 1u);
}

TEST(Broker, InjectedDuplicateEnqueuesTwoCopies) {
  Broker broker;
  broker.bind("q", "#");
  auto plan = std::make_shared<FaultPlan>(3);
  FaultSpec spec;
  spec.duplicate_rate = 1.0;
  plan->set("broker.publish", spec);
  broker.set_fault_plan(plan);
  PublishInfo info;
  info.producer = "h";
  info.seq = 7;
  EXPECT_EQ(broker.publish("k", "body", info), 1u);
  EXPECT_EQ(broker.depth("q"), 2u);
  EXPECT_EQ(broker.stats().resilience.injected_duplicates, 1u);
  const auto first = broker.consume("q", std::chrono::milliseconds(10));
  const auto second = broker.consume("q", std::chrono::milliseconds(10));
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->seq, 7u);
  EXPECT_EQ(second->seq, 7u);
  EXPECT_NE(first->delivery_tag, second->delivery_tag);
}

TEST(Broker, InjectedDelayRidesTheMessage) {
  Broker broker;
  broker.bind("q", "#");
  auto plan = std::make_shared<FaultPlan>(3);
  FaultSpec spec;
  spec.delay_rate = 1.0;
  spec.delay_min = 5 * util::kSecond;
  spec.delay_max = 5 * util::kSecond;
  plan->set("broker.publish", spec);
  broker.set_fault_plan(plan);
  EXPECT_EQ(broker.publish("k", "body", PublishInfo{"h", 1, 0, 0}), 1u);
  const auto msg = broker.consume("q", std::chrono::milliseconds(10));
  ASSERT_TRUE(msg);
  EXPECT_EQ(msg->delay, 5 * util::kSecond);
  EXPECT_EQ(broker.stats().resilience.injected_delays, 1u);
}

TEST(Broker, QueueLimitDeadLettersOverflow) {
  Broker broker;
  broker.bind("q", "#");
  broker.set_queue_limit("q", 2);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(broker.publish("k", "m" + std::to_string(i)), 1u);
  }
  EXPECT_EQ(broker.depth("q"), 2u);
  EXPECT_EQ(broker.dead_letter_depth("q"), 3u);
  EXPECT_EQ(broker.stats().resilience.dead_lettered, 3u);
  const auto dead = broker.drain_dead_letters("q");
  ASSERT_EQ(dead.size(), 3u);
  EXPECT_EQ(dead[0].body, "m2");
  EXPECT_EQ(broker.dead_letter_depth("q"), 0u);
}

TEST(Broker, RecoverRequeuesUnackedInOrder) {
  Broker broker;
  broker.bind("q", "#");
  broker.publish("k", "a");
  broker.publish("k", "b");
  const auto first = broker.consume("q", std::chrono::milliseconds(10));
  const auto second = broker.consume("q", std::chrono::milliseconds(10));
  ASSERT_TRUE(first && second);
  broker.recover("q");
  EXPECT_EQ(broker.depth("q"), 2u);
  const auto replay = broker.consume("q", std::chrono::milliseconds(10));
  ASSERT_TRUE(replay);
  EXPECT_EQ(replay->body, "a");  // original order restored
  EXPECT_EQ(replay->attempt, 2u);
  EXPECT_EQ(broker.stats().redelivered, 2u);
}

TEST(Daemon, RetriesThroughTransientDropsWithoutSpooling) {
  auto cluster = small_cluster(1);
  Broker broker;
  broker.bind("q", "#");
  auto plan = std::make_shared<FaultPlan>(11);
  FaultSpec spec;
  spec.drop_rate = 0.5;  // retries (4 attempts) almost surely get through
  plan->set("broker.publish", spec);
  broker.set_fault_plan(plan);
  transport::DaemonConfig dc;
  dc.faults = plan;
  dc.retry.max_attempts = 16;
  transport::StatsDaemon daemon(cluster.node(0), broker, dc,
                                [] { return std::vector<long>{}; });
  for (int i = 0; i < 20; ++i) {
    daemon.collect_now(kMidnight + i * util::kMinute, {});
  }
  EXPECT_EQ(daemon.spool_depth(), 0u);
  EXPECT_EQ(daemon.stats().collections, 20u);
  EXPECT_GT(daemon.stats().resilience.retries, 0u);
  EXPECT_GT(broker.stats().resilience.injected_drops, 0u);
  EXPECT_EQ(broker.depth("q"), 20u);
}

TEST(Daemon, OutageSpoolsThenReplaysInOrder) {
  auto cluster = small_cluster(1);
  Broker broker;
  broker.bind("q", "#");
  auto plan = std::make_shared<FaultPlan>(11);
  FaultSpec spec;
  spec.outages.push_back({kMidnight, kMidnight + util::kHour});
  plan->set("daemon.publish", spec);
  transport::DaemonConfig dc;
  dc.faults = plan;
  transport::StatsDaemon daemon(cluster.node(0), broker, dc,
                                [] { return std::vector<long>{}; });
  // Six collections inside the outage: all spooled, none published.
  for (int i = 0; i < 6; ++i) {
    daemon.collect_now(kMidnight + i * util::kMinute, {});
  }
  EXPECT_EQ(daemon.spool_depth(), 6u);
  EXPECT_EQ(daemon.stats().resilience.spooled, 6u);
  EXPECT_GT(daemon.stats().total_backoff, 0);
  EXPECT_EQ(broker.depth("q"), 0u);
  // First collection after the outage replays the spool, in order, ahead
  // of the fresh record.
  daemon.collect_now(kMidnight + 2 * util::kHour, {});
  EXPECT_EQ(daemon.spool_depth(), 0u);
  EXPECT_EQ(daemon.stats().resilience.replayed, 6u);
  EXPECT_EQ(broker.depth("q"), 7u);
  std::uint64_t prev_seq = 0;
  for (int i = 0; i < 7; ++i) {
    const auto msg = broker.consume("q", std::chrono::milliseconds(10));
    ASSERT_TRUE(msg);
    EXPECT_GT(msg->seq, prev_seq);
    prev_seq = msg->seq;
  }
}

TEST(Daemon, SpoolLimitAgesOutOldestRecords) {
  auto cluster = small_cluster(1);
  Broker broker;  // no binding: every publish is unroutable
  auto plan = std::make_shared<FaultPlan>(1);
  transport::DaemonConfig dc;
  dc.faults = plan;
  dc.retry.max_attempts = 1;
  dc.retry.spool_limit = 3;
  transport::StatsDaemon daemon(cluster.node(0), broker, dc,
                                [] { return std::vector<long>{}; });
  for (int i = 0; i < 5; ++i) {
    daemon.collect_now(kMidnight + i * util::kMinute, {});
  }
  EXPECT_EQ(daemon.spool_depth(), 3u);
  EXPECT_EQ(daemon.stats().resilience.spool_dropped, 2u);
}

TEST(Consumer, DedupsDuplicateDeliveries) {
  auto cluster = small_cluster(1);
  Broker broker;
  broker.bind("raw", "stats.*");
  auto plan = std::make_shared<FaultPlan>(21);
  FaultSpec spec;
  spec.duplicate_rate = 1.0;  // every publish enqueued twice
  plan->set("broker.publish", spec);
  broker.set_fault_plan(plan);
  transport::RawArchive archive;
  transport::Consumer consumer(broker, archive, "raw");
  transport::DaemonConfig dc;
  dc.faults = plan;
  transport::StatsDaemon daemon(cluster.node(0), broker, dc,
                                [] { return std::vector<long>{}; });
  for (int i = 0; i < 10; ++i) {
    daemon.collect_now(kMidnight + i * util::kMinute, {});
  }
  consumer.drain();
  EXPECT_EQ(archive.total_records(), 10u);
  EXPECT_EQ(consumer.resilience().deduped, 10u);
  EXPECT_EQ(archive.seen_count(cluster.node(0).hostname()), 10u);
  consumer.stop();
}

TEST(Consumer, CrashFaultRequeuesThenDedups) {
  auto cluster = small_cluster(1);
  Broker broker;
  broker.bind("raw", "stats.*");
  auto plan = std::make_shared<FaultPlan>(31);
  FaultSpec spec;
  spec.error_rate = 0.5;
  plan->set("consumer.crash", spec);
  transport::RawArchive archive;
  transport::Consumer consumer(broker, archive, "raw", nullptr, {}, plan);
  transport::StatsDaemon daemon(cluster.node(0), broker, {},
                                [] { return std::vector<long>{}; });
  for (int i = 0; i < 20; ++i) {
    daemon.collect_now(kMidnight + i * util::kMinute, {});
  }
  consumer.drain();
  EXPECT_EQ(archive.total_records(), 20u);  // exactly-once despite requeues
  const auto r = consumer.resilience();
  EXPECT_GT(r.requeued, 0u);
  EXPECT_EQ(r.deduped, r.requeued);  // every crash redelivery was absorbed
  consumer.stop();
}

TEST(Archive, AppendUniqueWindowForgetsOldSeqs) {
  transport::RawArchive archive;
  collect::HostLog chunk;  // header-only: dedup bookkeeping still applies
  chunk.hostname = "h";
  EXPECT_TRUE(archive.append_unique("h", 1, chunk, 0, 2));
  EXPECT_TRUE(archive.append_unique("h", 2, chunk, 0, 2));
  EXPECT_FALSE(archive.append_unique("h", 2, chunk, 0, 2));
  EXPECT_TRUE(archive.append_unique("h", 3, chunk, 0, 2));  // evicts seq 1
  EXPECT_FALSE(archive.was_seen("h", 1));
  EXPECT_TRUE(archive.was_seen("h", 3));
  EXPECT_EQ(archive.seen_count("h"), 2u);
}

TEST(Cron, RsyncFailureCatchesUpNextWindow) {
  auto cluster = small_cluster(1);
  transport::RawArchive archive;
  transport::CronConfig cc;
  cc.interval = util::kHour;
  auto plan = std::make_shared<FaultPlan>(8);
  FaultSpec spec;
  // Fail day 1's staging attempt deterministically, succeed afterwards.
  spec.outages.push_back({kMidnight, kMidnight + util::kDay + 6 * util::kHour});
  plan->set("cron.rsync", spec);
  cc.faults = plan;
  transport::CronMode cron(cluster, archive, cc,
                           [](std::size_t) { return std::vector<long>{}; });
  // Two full days plus the staging window of day 3.
  for (util::SimTime t = kMidnight; t <= kMidnight + 54 * util::kHour;
       t += util::kHour) {
    cron.on_time(t);
  }
  EXPECT_GT(cron.stats().rsync_failures, 0u);
  // Day 1 AND day 2 records all staged by day 3's window: nothing lost.
  EXPECT_EQ(cron.stats().lost_records, 0u);
  EXPECT_GE(cron.stats().staged_records, 48u);
  EXPECT_EQ(cron.stats().staged_records + cron.backlog(),
            cron.stats().collected_records);
}

TEST(Cron, DiskFullDropsSamplesButKeepsCounting) {
  auto cluster = small_cluster(1);
  transport::RawArchive archive;
  transport::CronConfig cc;
  cc.interval = 10 * util::kMinute;
  auto plan = std::make_shared<FaultPlan>(8);
  FaultSpec spec;
  spec.error_rate = 1.0;
  plan->set("cron.disk", spec);
  cc.faults = plan;
  transport::CronMode cron(cluster, archive, cc,
                           [](std::size_t) { return std::vector<long>{}; });
  for (int i = 0; i < 6; ++i) {
    cron.on_time(kMidnight + i * 10 * util::kMinute);
  }
  EXPECT_EQ(cron.stats().collected_records, 6u);
  EXPECT_EQ(cron.stats().disk_full_drops, 6u);
  EXPECT_EQ(cron.stats().lost_records, 6u);
  EXPECT_EQ(cron.backlog(), 0u);
}

}  // namespace
}  // namespace tacc
