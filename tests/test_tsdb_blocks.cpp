// Compressed block tier of the time-series store: codec round trips, the
// compressed-vs-uncompressed equivalence guarantee (same stored points =>
// byte-identical query() results across block sizes, including
// block_points = 1 and "never sealed"), rollup-vs-decode equivalence for
// every aggregator, rate semantics across seal boundaries, and query edge
// cases over sealed data.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "tsdb/block.hpp"
#include "tsdb/store.hpp"
#include "util/rng.hpp"

namespace tacc::tsdb {
namespace {

constexpr util::SimTime kT0 = 1451606400LL * util::kSecond;

/// The pre-block-tier layout: points stay raw in the head forever.
StoreOptions never_sealed_opts() {
  StoreOptions o;
  o.shards = 16;
  o.block_points = 0;
  return o;
}

/// Exact equality of query outputs (tags, times, and bit-equal values).
void expect_identical(const std::vector<SeriesResult>& a,
                      const std::vector<SeriesResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].group_tags, b[i].group_tags);
    ASSERT_EQ(a[i].points.size(), b[i].points.size());
    for (std::size_t p = 0; p < a[i].points.size(); ++p) {
      EXPECT_EQ(a[i].points[p].time, b[i].points[p].time);
      // Bit comparison, not EXPECT_DOUBLE_EQ or even operator==: the
      // contract is bit-identical, including NaN payloads and zero signs.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].points[p].value),
                std::bit_cast<std::uint64_t>(b[i].points[p].value))
          << "series " << i << " point " << p << ": "
          << a[i].points[p].value << " vs " << b[i].points[p].value;
    }
  }
}

// ---- Codec round trips -------------------------------------------------

TEST(TsdbBlocks, CodecRoundTripsRegularCounter) {
  std::vector<DataPoint> pts;
  double v = 1.0e9;
  for (int i = 0; i < 1024; ++i) {
    v += 12345.0 + i % 7;
    pts.push_back({kT0 + i * 10 * util::kMinute, v});
  }
  const auto block = SealedBlock::seal(pts);
  std::vector<DataPoint> back;
  block->decode_append(back);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(back[i].time, pts[i].time);
    EXPECT_EQ(back[i].value, pts[i].value);
  }
  // The point of the exercise: a monotonic counter at a regular cadence
  // must land far below the 16 raw bytes per point.
  EXPECT_LT(static_cast<double>(block->payload_bytes()) /
                static_cast<double>(pts.size()),
            4.0);
}

TEST(TsdbBlocks, CodecRoundTripsHostileValues) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double denorm = std::numeric_limits<double>::denorm_min();
  std::vector<DataPoint> pts = {
      {kT0, 0.0},
      {kT0 + 1, -0.0},
      {kT0 + 2, nan},
      {kT0 + 3, inf},
      {kT0 + 4, -inf},
      {kT0 + 5, denorm},
      {kT0 + 5, 1.0},  // duplicate timestamp
      {kT0 + 1000000007LL, -1.5e-300},
      {kT0 + 1000000008LL, 1.5e300},
  };
  const auto block = SealedBlock::seal(pts);
  std::vector<DataPoint> back;
  block->decode_append(back);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(back[i].time, pts[i].time);
    // Bit-exact including NaN payloads and signed zero.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i].value),
              std::bit_cast<std::uint64_t>(pts[i].value));
  }
}

TEST(TsdbBlocks, CodecRoundTripsRandomBits) {
  util::Rng rng("tsdb.block.bits", 7);
  std::vector<DataPoint> pts;
  util::SimTime t = kT0;
  for (int i = 0; i < 512; ++i) {
    t += static_cast<util::SimTime>(rng.uniform_int(0, 3600)) * util::kSecond;
    pts.push_back({t, std::bit_cast<double>(rng())});
  }
  const auto block = SealedBlock::seal(pts);
  std::vector<DataPoint> back;
  block->decode_append(back);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(back[i].time, pts[i].time);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i].value),
              std::bit_cast<std::uint64_t>(pts[i].value));
  }
}

TEST(TsdbBlocks, SummaryMatchesAggregateFolds) {
  std::vector<DataPoint> pts;
  std::vector<double> vals;
  util::Rng rng("tsdb.block.summary", 1);
  for (int i = 0; i < 300; ++i) {
    const double v = rng.normal(50.0, 20.0);
    pts.push_back({kT0 + i * util::kMinute, v});
    vals.push_back(v);
  }
  const auto block = SealedBlock::seal(pts);
  const BlockSummary& s = block->summary();
  EXPECT_EQ(s.t_min, pts.front().time);
  EXPECT_EQ(s.t_max, pts.back().time);
  EXPECT_EQ(s.count, 300u);
  EXPECT_EQ(s.sum, aggregate(Aggregator::Sum, vals));
  EXPECT_EQ(s.min, aggregate(Aggregator::Min, vals));
  EXPECT_EQ(s.max, aggregate(Aggregator::Max, vals));
}

// ---- Store equivalence across block sizes ------------------------------

/// A put_batch call replayed identically into every store under test, so
/// the append sequences (and therefore tie-breaking among equal
/// timestamps) are the same everywhere.
struct Append {
  std::string metric;
  TagSet tags;
  std::vector<DataPoint> points;
};

std::vector<Store> build_stores(const std::vector<Append>& appends,
                                const std::vector<std::size_t>& block_sizes,
                                bool seal) {
  std::vector<Store> stores;
  stores.reserve(block_sizes.size());
  for (const std::size_t bp : block_sizes) {
    StoreOptions opts;
    opts.block_points = bp;
    Store s(opts);
    for (const auto& a : appends) s.put_batch(a.metric, a.tags, a.points);
    if (seal) s.seal_all();
    stores.push_back(std::move(s));
  }
  return stores;
}

std::vector<Query> probe_queries() {
  std::vector<Query> qs;
  Query sum;
  sum.metric = "m";
  sum.aggregator = Aggregator::Sum;
  qs.push_back(sum);

  Query grouped = sum;
  grouped.group_by = {"host"};
  grouped.downsample = 5 * util::kMinute;
  qs.push_back(grouped);

  Query rated = sum;
  rated.rate = true;
  rated.aggregator = Aggregator::Avg;
  qs.push_back(rated);

  Query coarse = sum;
  coarse.downsample = util::kHour;
  coarse.downsample_aggregator = Aggregator::Max;
  qs.push_back(coarse);

  Query whole = sum;
  whole.downsample = util::kDay;  // covers whole blocks: rollup territory
  whole.downsample_aggregator = Aggregator::Avg;
  qs.push_back(whole);

  Query ranged = sum;
  ranged.start = kT0 + 13 * util::kMinute;
  ranged.end = kT0 + 200 * util::kMinute;
  ranged.downsample = 10 * util::kMinute;
  qs.push_back(ranged);
  return qs;
}

TEST(TsdbBlocks, QueryEquivalenceAcrossBlockSizes) {
  std::vector<Append> appends;
  for (int h = 0; h < 4; ++h) {
    Append a;
    a.metric = "m";
    a.tags = {{"host", "h" + std::to_string(h)},
              {"user", h % 2 == 0 ? "storm" : "victim"}};
    double v = 100.0 * h;
    for (int i = 0; i < 700; ++i) {
      v += 1.0 + (i % 5);
      if (i == 350) v = 0.0;  // counter reset mid-stream
      a.points.push_back({kT0 + i * util::kMinute, v});
    }
    appends.push_back(std::move(a));
  }

  // block_points = 0 never auto-seals: with seal = false it is the raw,
  // uncompressed reference everything else must match bit for bit.
  const std::vector<std::size_t> sizes = {0, 1, 4, 7, 64, 300, 1024};
  for (const bool seal : {false, true}) {
    auto stores = build_stores(appends, sizes, seal);
    const Store& reference = stores.front();
    for (auto q : probe_queries()) {
      const auto want = reference.query(q);
      for (std::size_t i = 1; i < stores.size(); ++i) {
        expect_identical(want, stores[i].query(q));
      }
    }
  }
}

TEST(TsdbBlocks, EmptyTimeRangeOverSealedBlocks) {
  StoreOptions opts;
  opts.block_points = 16;
  Store sealed(opts);
  Store raw(never_sealed_opts());
  for (int i = 0; i < 100; ++i) {
    sealed.put("m", {{"host", "h"}}, kT0 + i * util::kMinute, i * 2.0);
    raw.put("m", {{"host", "h"}}, kT0 + i * util::kMinute, i * 2.0);
  }
  Query q;
  q.metric = "m";
  q.start = kT0 + util::kDay;  // entirely after the data
  q.end = kT0 + 2 * util::kDay;
  const auto got = sealed.query(q);
  expect_identical(raw.query(q), got);
  for (const auto& r : got) EXPECT_TRUE(r.points.empty());
}

TEST(TsdbBlocks, RangeInsideOneBlock) {
  StoreOptions opts;
  opts.block_points = 64;
  Store sealed(opts);
  Store raw(never_sealed_opts());
  for (int i = 0; i < 256; ++i) {
    sealed.put("m", {}, kT0 + i * util::kMinute, std::sin(i * 0.1));
    raw.put("m", {}, kT0 + i * util::kMinute, std::sin(i * 0.1));
  }
  Query q;
  q.metric = "m";
  // [70, 90) minutes: strictly inside the second 64-point block.
  q.start = kT0 + 70 * util::kMinute;
  q.end = kT0 + 90 * util::kMinute;
  for (const auto ds : {util::SimTime{0}, 5 * util::kMinute}) {
    q.downsample = ds;
    const auto got = sealed.query(q);
    expect_identical(raw.query(q), got);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_FALSE(got[0].points.empty());
  }
}

TEST(TsdbBlocks, RangeStraddlingHeadAndSealed) {
  StoreOptions opts;
  opts.block_points = 100;
  Store sealed(opts);
  Store raw(never_sealed_opts());
  // 130 points: one sealed block of 100 + a 30-point head.
  for (int i = 0; i < 130; ++i) {
    sealed.put("m", {}, kT0 + i * util::kMinute, 3.0 * i);
    raw.put("m", {}, kT0 + i * util::kMinute, 3.0 * i);
  }
  Query q;
  q.metric = "m";
  q.start = kT0 + 90 * util::kMinute;  // last 10 sealed + all head points
  q.end = kT0 + 125 * util::kMinute;
  for (const auto ds : {util::SimTime{0}, 10 * util::kMinute}) {
    q.downsample = ds;
    const auto got = sealed.query(q);
    expect_identical(raw.query(q), got);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_FALSE(got[0].points.empty());
  }
}

TEST(TsdbBlocks, OutOfOrderIngestThenSeal) {
  // Writes jump backwards across what will become seal boundaries, so
  // sealed blocks overlap in time and the store must stable-merge them.
  std::vector<Append> appends;
  Append a;
  a.metric = "m";
  for (int i = 0; i < 300; ++i) {
    const int scrambled = (i * 37) % 300;
    a.points.push_back(
        {kT0 + scrambled * util::kMinute, static_cast<double>(scrambled)});
  }
  // Duplicate timestamps with distinct values: stability is observable.
  for (int i = 0; i < 50; ++i) {
    a.points.push_back({kT0 + 10 * util::kMinute, 1000.0 + i});
  }
  appends.push_back(std::move(a));

  const std::vector<std::size_t> sizes = {0, 1, 32, 128};
  for (const bool seal : {false, true}) {
    auto stores = build_stores(appends, sizes, seal);
    for (auto q : probe_queries()) {
      q.group_by.clear();
      const auto want = stores.front().query(q);
      for (std::size_t i = 1; i < stores.size(); ++i) {
        expect_identical(want, stores[i].query(q));
      }
    }
  }
}

// ---- Rate semantics at seal boundaries (regression) --------------------

TEST(TsdbBlocks, CounterResetOnSealBoundaryClampsToZero) {
  // 8 points, block_points = 4: the counter resets exactly at the point
  // that opens the second block, so the negative delta spans the seal
  // boundary. rate() must clamp it to 0 — the same answer the unsealed
  // store gives.
  const std::vector<double> counter = {100, 200, 300, 400,  // block 1
                                       5,   105, 205, 305};  // reset at seam
  StoreOptions opts;
  opts.block_points = 4;
  Store sealed(opts);
  Store raw(never_sealed_opts());
  for (std::size_t i = 0; i < counter.size(); ++i) {
    const util::SimTime t = kT0 + static_cast<util::SimTime>(i) * util::kMinute;
    sealed.put("ctr", {}, t, counter[i]);
    raw.put("ctr", {}, t, counter[i]);
  }
  ASSERT_EQ(sealed.storage_stats().sealed_blocks, 2u);

  Query q;
  q.metric = "ctr";
  q.rate = true;
  const auto got = sealed.query(q);
  expect_identical(raw.query(q), got);
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].points.size(), 7u);
  // Deltas of 100 over 60 s everywhere except the reset, which clamps.
  for (std::size_t i = 0; i < got[0].points.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[0].points[i].value, i == 3 ? 0.0 : 100.0 / 60.0)
        << "rate point " << i;
  }
}

// ---- Rollup vs decode, property-style ----------------------------------

TEST(TsdbBlocks, RollupVsDecodeEquivalenceSeeded) {
  // Random series shapes and block sizes; downsample buckets sized so
  // some cover whole blocks (rollup fast path) and some split them
  // (decode fallback). Every aggregator must match the never-sealed
  // reference bit for bit either way.
  util::Rng rng("tsdb.rollup.prop", 2016);
  for (int round = 0; round < 12; ++round) {
    std::vector<Append> appends;
    const int series = static_cast<int>(rng.uniform_int(1, 4));
    for (int s = 0; s < series; ++s) {
      Append a;
      a.metric = "m";
      a.tags = {{"host", "h" + std::to_string(s)}};
      const int n = static_cast<int>(rng.uniform_int(1, 600));
      util::SimTime t = kT0;
      double v = rng.uniform(0.0, 1e6);
      for (int i = 0; i < n; ++i) {
        t += static_cast<util::SimTime>(rng.uniform_int(1, 600)) *
             util::kSecond;
        v = rng.bernoulli(0.05) ? rng.uniform(0.0, 1e6)
                                : v + rng.uniform(0.0, 1e4);
        a.points.push_back({t, v});
      }
      appends.push_back(std::move(a));
    }

    const std::vector<std::size_t> sizes = {
        0, static_cast<std::size_t>(rng.uniform_int(1, 64)),
        static_cast<std::size_t>(rng.uniform_int(64, 512))};
    auto stores = build_stores(appends, sizes, /*seal=*/true);

    for (const auto agg : {Aggregator::Sum, Aggregator::Avg, Aggregator::Min,
                           Aggregator::Max, Aggregator::Count}) {
      Query q;
      q.metric = "m";
      q.group_by = {"host"};
      q.downsample_aggregator = agg;
      q.aggregator = agg;
      for (const util::SimTime ds :
           {util::kMinute, util::kHour, util::kDay, 7 * util::kDay}) {
        q.downsample = ds;
        SCOPED_TRACE("round " + std::to_string(round) + " ds " +
                     std::to_string(ds) + " agg " +
                     std::to_string(static_cast<int>(agg)));
        const auto want = stores.front().query(q);
        for (std::size_t i = 1; i < stores.size(); ++i) {
          expect_identical(want, stores[i].query(q));
        }
      }
    }
  }
}

TEST(TsdbBlocks, FoldRollupWithNaNsMatchesDecode) {
  // Min/Max summaries may join a bucket's running fold only when they are
  // not NaN: a decode fold skips a mid-stream NaN, while folding a NaN
  // summary would absorb the whole bucket. Sprinkle NaNs (including at
  // block fronts, where the summary itself goes NaN) and require every
  // sealed layout to match the never-sealed reference bit for bit.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Append> appends;
  Append a;
  a.metric = "m";
  a.tags = {{"host", "h"}};
  for (int i = 0; i < 500; ++i) {
    // NaN at i % 50 == 0 hits block fronts for block_points = 50 and
    // mid-block positions for the other sizes.
    const double v = i % 50 == 0 ? nan : 1000.0 - i;
    a.points.push_back({kT0 + i * util::kMinute, v});
  }
  appends.push_back(std::move(a));

  const std::vector<std::size_t> sizes = {0, 1, 13, 50, 128};
  auto stores = build_stores(appends, sizes, /*seal=*/true);
  for (const auto agg :
       {Aggregator::Min, Aggregator::Max, Aggregator::Count}) {
    Query q;
    q.metric = "m";
    q.downsample_aggregator = agg;
    q.aggregator = agg;
    for (const util::SimTime ds : {util::kHour, util::kDay}) {
      q.downsample = ds;
      SCOPED_TRACE("agg " + std::to_string(static_cast<int>(agg)) + " ds " +
                   std::to_string(ds));
      const auto want = stores.front().query(q);
      for (std::size_t i = 1; i < stores.size(); ++i) {
        expect_identical(want, stores[i].query(q));
      }
    }
  }
}

// ---- Storage accounting ------------------------------------------------

TEST(TsdbBlocks, StorageStatsTrackTiers) {
  StoreOptions opts;
  opts.block_points = 128;
  Store s(opts);
  double v = 0.0;
  for (int i = 0; i < 1000; ++i) {
    v += 17.0;
    s.put("m", {{"host", "h"}}, kT0 + i * 10 * util::kMinute, v);
  }
  auto st = s.storage_stats();
  EXPECT_EQ(st.sealed_blocks, 7u);  // 7 * 128 = 896 sealed
  EXPECT_EQ(st.sealed_points, 896u);
  EXPECT_EQ(st.head_points, 104u);
  EXPECT_EQ(st.sealed_points + st.head_points, s.num_points());
  EXPECT_GT(st.sealed_bytes, 0u);
  // Compressed far below the 16 raw bytes per point.
  EXPECT_LT(static_cast<double>(st.sealed_bytes) /
                static_cast<double>(st.sealed_points),
            4.0);

  s.seal_all();
  st = s.storage_stats();
  EXPECT_EQ(st.head_points, 0u);
  EXPECT_EQ(st.sealed_points, 1000u);
  EXPECT_EQ(st.sealed_blocks, 8u);
  EXPECT_EQ(s.num_points(), 1000u);
}

}  // namespace
}  // namespace tacc::tsdb
