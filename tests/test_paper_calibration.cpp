// Paper-shape calibration: a scaled-down population must reproduce the
// qualitative section V statistics. These are statistical assertions with
// generous bands — the benches report the precise values.
#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/ingest.hpp"
#include "pipeline/minisim.hpp"
#include "util/stats.hpp"
#include "workload/generator.hpp"

namespace tacc::pipeline {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  // One shared population for the whole suite (building it runs ~2.5k jobs
  // through the full stack).
  static void SetUpTestSuite() {
    workload::PopulationConfig config;
    config.num_jobs = 2500;
    config.storm_jobs = 40;
    config.seed = 2015;
    jobs_ = new std::vector<workload::JobSpec>(
        workload::generate_population(config));
    database_ = new db::Database();
    MiniSimOptions opts;
    opts.samples = 3;
    ingest_population(*database_, *jobs_, opts);
  }
  static void TearDownTestSuite() {
    delete jobs_;
    delete database_;
    jobs_ = nullptr;
    database_ = nullptr;
  }

  static const db::Table& jobs_table() {
    return database_->table(kJobsTable);
  }

  static std::vector<workload::JobSpec>* jobs_;
  static db::Database* database_;
};

std::vector<workload::JobSpec>* CalibrationTest::jobs_ = nullptr;
db::Database* CalibrationTest::database_ = nullptr;

TEST_F(CalibrationTest, AllJobsIngested) {
  EXPECT_EQ(jobs_table().num_rows(), jobs_->size());
}

TEST_F(CalibrationTest, VectorizationSplitMatchesPaper) {
  // Paper: 52% of jobs >1% vectorized; 25% >50% vectorized.
  const auto& t = jobs_table();
  const double total = static_cast<double>(t.num_rows());
  const double over1 =
      t.aggregate_where(db::Agg::Count, "",
                        {{"VecPercent", db::Op::Gt, db::Value(0.01)}});
  const double over50 =
      t.aggregate_where(db::Agg::Count, "",
                        {{"VecPercent", db::Op::Gt, db::Value(0.50)}});
  EXPECT_NEAR(over1 / total, 0.52, 0.11);
  EXPECT_NEAR(over50 / total, 0.25, 0.08);
}

TEST_F(CalibrationTest, MicAdoptionMatchesPaper) {
  // Paper: 1.3% of jobs used the Phi for more than 1% of cpu time.
  const auto& t = jobs_table();
  const double mic =
      t.aggregate_where(db::Agg::Count, "",
                        {{"MIC_Usage", db::Op::Gt, db::Value(0.01)}});
  EXPECT_NEAR(mic / static_cast<double>(t.num_rows()), 0.013, 0.01);
}

TEST_F(CalibrationTest, HighMemoryJobsAreRare) {
  // Paper: 3% of jobs used more than 20 GB of the 32 GB nodes.
  const auto& t = jobs_table();
  const double rows = static_cast<double>(t.num_rows());
  const double himem =
      t.aggregate_where(db::Agg::Count, "",
                        {{"MemUsage", db::Op::Gt, db::Value(20.0)},
                         {"queue", db::Op::Ne, db::Value("largemem")}});
  EXPECT_NEAR(himem / rows, 0.03, 0.025);
}

TEST_F(CalibrationTest, IdleNodeJobsAroundTwoPercent) {
  // Paper: over 2% of jobs had entirely idle nodes in Q4 2015.
  const auto& t = jobs_table();
  const double idle = t.aggregate_where(
      db::Agg::Count, "", {{"idle", db::Op::Lt, db::Value(0.15)}});
  const double frac = idle / static_cast<double>(t.num_rows());
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 0.06);
}

TEST_F(CalibrationTest, CorrelationsAreNegativeLikeThePaper) {
  // Paper (110,438 production jobs): CPU_Usage vs MDCReqs r=-0.11,
  // vs OSCReqs r=-0.20, vs LnetAveBW r=-0.19.
  const auto& t = jobs_table();
  std::vector<db::RowId> production;
  for (const auto id : t.select({{"status", db::Op::Eq,
                                  db::Value("COMPLETED")},
                                 {"runtime", db::Op::Gt,
                                  db::Value(3600.0)}})) {
    const auto queue = t.at(id, "queue").as_text();
    if (queue == "normal" || queue == "largemem") production.push_back(id);
  }
  ASSERT_GT(production.size(), 300u);
  auto corr = [&](const char* metric) {
    std::vector<double> x, y;
    for (const auto id : production) {
      const auto& cpu = t.at(id, "CPU_Usage");
      const auto& v = t.at(id, metric);
      if (cpu.is_null() || v.is_null()) continue;
      x.push_back(cpu.as_real());
      y.push_back(v.as_real());
    }
    return util::pearson(std::span<const double>(x.data(), x.size()),
                         std::span<const double>(y.data(), y.size()));
  };
  const double r_mdc = corr("MDCReqs");
  const double r_osc = corr("OSCReqs");
  const double r_lnet = corr("LnetAveBW");
  EXPECT_LT(r_mdc, -0.02);
  EXPECT_LT(r_osc, -0.05);
  EXPECT_LT(r_lnet, -0.05);
  EXPECT_GT(r_mdc, -0.5);
  EXPECT_GT(r_osc, -0.5);
  EXPECT_GT(r_lnet, -0.5);
}

TEST_F(CalibrationTest, StormCohortVsWrfPopulation) {
  // Paper section V-B: the storm user's WRF jobs average 67% CPU and a
  // MetaDataRate of 563,905 vs the WRF population's 80% and 3,870; the
  // LLiteOpenClose ratio is ~30,884 vs 2.
  const auto& t = jobs_table();
  const auto storm = t.select({{"user", db::Op::Eq, db::Value("wrfuser42")}});
  std::vector<db::RowId> wrf_rest;
  for (const auto id :
       t.select({{"exe", db::Op::Eq, db::Value("wrf.exe")}})) {
    if (t.at(id, "user").as_text() != "wrfuser42") wrf_rest.push_back(id);
  }
  ASSERT_GT(storm.size(), 10u);
  ASSERT_GT(wrf_rest.size(), 50u);
  const double storm_cpu = t.aggregate(db::Agg::Avg, "CPU_Usage", storm);
  const double wrf_cpu = t.aggregate(db::Agg::Avg, "CPU_Usage", wrf_rest);
  const double storm_mdr = t.aggregate(db::Agg::Avg, "MetaDataRate", storm);
  const double wrf_mdr = t.aggregate(db::Agg::Avg, "MetaDataRate", wrf_rest);
  const double storm_oc = t.aggregate(db::Agg::Avg, "LLiteOpenClose", storm);
  const double wrf_oc = t.aggregate(db::Agg::Avg, "LLiteOpenClose", wrf_rest);
  EXPECT_NEAR(storm_cpu, 0.67, 0.06);
  EXPECT_NEAR(wrf_cpu, 0.80, 0.05);
  EXPECT_GT(storm_mdr, 50.0 * wrf_mdr);    // orders of magnitude apart
  EXPECT_GT(storm_oc, 1000.0 * wrf_oc);
  EXPECT_NEAR(storm_oc, 30884.0, 12000.0);
}

TEST_F(CalibrationTest, FlagBreakdownCoversPaperRules) {
  const auto& t = jobs_table();
  const auto gige = t.select(
      {{"flags", db::Op::Contains, db::Value("high_gige")}});
  const auto largemem = t.select(
      {{"flags", db::Op::Contains, db::Value("largemem_underuse")}});
  const auto storm = t.select(
      {{"flags", db::Op::Contains, db::Value("high_metadata_rate")}});
  EXPECT_GT(gige.size(), 0u);
  EXPECT_GT(largemem.size(), 0u);
  EXPECT_GE(storm.size(), 30u);  // at least the storm cohort
}

TEST_F(CalibrationTest, PowerBreakdownIsPhysical) {
  const auto& t = jobs_table();
  const auto all = t.select({});
  const double pkg = t.aggregate(db::Agg::Avg, "PkgWatts", all);
  const double core = t.aggregate(db::Agg::Avg, "CoreWatts", all);
  const double dram = t.aggregate(db::Agg::Avg, "DramWatts", all);
  EXPECT_GT(pkg, core);   // cores are part of the package
  EXPECT_GT(core, 0.0);
  EXPECT_GT(dram, 0.0);
  EXPECT_LT(pkg, 250.0);  // per node, 2 sockets, sane wattage
}

}  // namespace
}  // namespace tacc::pipeline
