// Hierarchical aggregation transport: frame wire format, rendezvous shard
// assignment, watermark backpressure, tree construction, in-flight
// pre-reduction (coalescing), and the headline invariant — the archive is
// byte-identical across topology shapes (flat vs 2-tier vs 3-tier) under
// the same seed and fault schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/monitor.hpp"
#include "pipeline/ingest.hpp"
#include "transport/aggregator.hpp"
#include "transport/archive.hpp"
#include "transport/broker.hpp"
#include "transport/consumer.hpp"
#include "transport/frame.hpp"
#include "transport/topology.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace tacc {
namespace {

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;  // 2016-01-04
constexpr const char* kQueue = "raw_stats";

/// A small synthetic host log: one 4-counter schema, hand-built records.
collect::HostLog make_synth_log(const std::string& host) {
  collect::HostLog log;
  log.hostname = host;
  log.arch = "synth";
  std::vector<collect::SchemaEntry> entries;
  for (int k = 0; k < 4; ++k) {
    entries.push_back({"ctr" + std::to_string(k), true, 64, "", 1.0});
  }
  log.schemas.emplace_back("dev", std::move(entries));
  log.reindex_schemas();
  return log;
}

collect::Record make_synth_record(util::SimTime t, std::uint64_t base) {
  collect::Record rec;
  rec.time = t;
  rec.jobids = {4242};
  collect::RawBlock b;
  b.type = "dev";
  b.device = "0";
  for (std::uint64_t k = 0; k < 4; ++k) b.values.push_back(base + k);
  rec.blocks.push_back(std::move(b));
  return rec;
}

TEST(AggFrame, SerializeParseRoundTrip) {
  const auto log = make_synth_log("c401-101");
  const auto rec1 = make_synth_record(kStart, 100);
  const auto rec2 = make_synth_record(kStart + util::kMinute, 200);

  transport::AggFrame f;
  f.producer = "c401-101";
  f.seqs = {7, 8};
  f.delays = {0, 5 * util::kSecond};
  const std::string header = log.serialize_header();
  f.header_len = header.size();
  f.payload = header + collect::HostLog::serialize_record(rec1) +
              collect::HostLog::serialize_record(rec2);

  const std::string wire = f.serialize();
  ASSERT_TRUE(transport::AggFrame::is_frame(wire));
  const auto parsed = transport::AggFrame::parse(wire);
  EXPECT_EQ(parsed.producer, f.producer);
  EXPECT_EQ(parsed.seqs, f.seqs);
  EXPECT_EQ(parsed.delays, f.delays);
  EXPECT_EQ(parsed.header_len, f.header_len);
  EXPECT_EQ(parsed.payload, f.payload);
  EXPECT_EQ(parsed.record_count(), 2u);

  // The payload is a well-formed host log carrying exactly the records.
  const auto chunk = collect::HostLog::parse(parsed.payload);
  ASSERT_EQ(chunk.records.size(), 2u);
  EXPECT_EQ(chunk.records[0], rec1);
  EXPECT_EQ(chunk.records[1], rec2);
}

TEST(AggFrame, PlainChunkIsNotAFrame) {
  auto log = make_synth_log("c401-101");
  log.records.push_back(make_synth_record(kStart, 1));
  EXPECT_FALSE(transport::AggFrame::is_frame(log.serialize()));
  EXPECT_FALSE(transport::AggFrame::is_frame(""));
}

TEST(AggFrame, MalformedInputThrows) {
  transport::AggFrame f;
  f.producer = "h";
  f.seqs = {1};
  f.delays = {0};
  f.header_len = 3;  // the whole payload is "header" bytes
  f.payload = "xyz";
  const std::string wire = f.serialize();
  // Truncation into the declared header prefix is detectable.
  EXPECT_THROW(transport::AggFrame::parse(wire.substr(0, wire.size() - 1)),
               std::invalid_argument);
  // Bad magic.
  EXPECT_THROW(transport::AggFrame::parse("$tacc_agg 9 h 1 0\n"),
               std::invalid_argument);
  // seqs/delays count mismatch.
  transport::AggFrame g = f;
  g.delays = {0, 1};
  EXPECT_THROW(transport::AggFrame::parse(g.serialize()),
               std::invalid_argument);
}

TEST(AggFrame, MessageSeqsIsFrameAware) {
  transport::Message plain;
  plain.producer = "c1";
  plain.seq = 9;
  plain.body = "$tacc_stats ...";
  const auto ps = transport::AggFrame::message_seqs(plain);
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(ps[0], (std::pair<std::string, std::uint64_t>{"c1", 9}));
  EXPECT_EQ(transport::AggFrame::message_records(plain), 1u);

  transport::AggFrame f;
  f.producer = "c2";
  f.seqs = {3, 4, 5};
  f.delays = {0, 0, 0};
  f.header_len = 0;
  f.payload = "";
  transport::Message framed;
  framed.producer = "agg-1-0";
  framed.seq = 1;
  framed.body = f.serialize();
  const auto fs = transport::AggFrame::message_seqs(framed);
  ASSERT_EQ(fs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fs[i].first, "c2");
    EXPECT_EQ(fs[i].second, f.seqs[i]);
  }
  EXPECT_EQ(transport::AggFrame::message_records(framed), 3u);
}

TEST(Rendezvous, StableBalancedAndMinimallyRemapped) {
  constexpr std::size_t kHosts = 4096;
  constexpr std::size_t kN = 8;
  std::vector<std::size_t> count(kN, 0);
  std::size_t moved = 0;
  for (std::size_t h = 0; h < kHosts; ++h) {
    const std::string host = "node-" + std::to_string(h);
    const std::size_t a = transport::AggregationTree::rendezvous_pick(host, kN);
    // Pure function: same inputs, same shard.
    EXPECT_EQ(a, transport::AggregationTree::rendezvous_pick(host, kN));
    ASSERT_LT(a, kN);
    ++count[a];
    if (transport::AggregationTree::rendezvous_pick(host, kN + 1) != a) {
      ++moved;
    }
  }
  // Every shard owns a meaningful share (~512 each; allow wide slack).
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_GT(count[i], kHosts / (4 * kN)) << "shard " << i << " starved";
  }
  // Growing N -> N+1 remaps ~1/(N+1) of the hosts, not a global reshuffle.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved) / kHosts, 0.25);
}

TEST(BrokerWatermarks, PauseAndResumeCountedOncePerCrossing) {
  transport::Broker broker;
  broker.declare_queue("q");
  broker.bind("q", "stats.*");
  broker.set_watermarks("q", 4, 2);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(broker.publish("stats.h", "m" + std::to_string(i)), 1u);
    EXPECT_FALSE(broker.queue_paused("q"));
  }
  EXPECT_EQ(broker.publish("stats.h", "m3"), 1u);  // depth hits high = 4
  EXPECT_TRUE(broker.queue_paused("q"));
  EXPECT_TRUE(broker.publish_paused("stats.h"));
  EXPECT_FALSE(broker.publish_paused("other.h"));  // no binding, no pause
  // Watermarks are advisory: a publish while paused still lands.
  EXPECT_EQ(broker.publish("stats.h", "m4"), 1u);
  EXPECT_EQ(broker.depth("q"), 5u);

  using namespace std::chrono_literals;
  std::vector<std::uint64_t> tags;
  for (int i = 0; i < 3; ++i) {
    auto msg = broker.consume("q", 100ms);
    ASSERT_TRUE(msg.has_value());
    tags.push_back(msg->delivery_tag);
  }
  // Depth 2 == low watermark: resumed (delivery alone drains the queue).
  EXPECT_FALSE(broker.queue_paused("q"));
  EXPECT_FALSE(broker.publish_paused("stats.h"));
  EXPECT_EQ(broker.unacked_depth("q"), 3u);
  for (const auto tag : tags) broker.ack("q", tag);

  const auto r = broker.stats().resilience;
  EXPECT_EQ(r.paused_windows, 1u);
  EXPECT_EQ(r.resumed_windows, 1u);
}

TEST(AggregationTree, ShapeConstruction) {
  transport::TreeOptions opts;
  opts.leaf_brokers = 8;
  opts.fanout = 2;
  transport::AggregationTree tree(kQueue, opts, nullptr);
  // 8 -> 4 -> 2 -> 1: four tiers, 7 aggregators (one per upper broker).
  ASSERT_EQ(tree.tier_count(), 4u);
  EXPECT_EQ(tree.broker_count(0), 8u);
  EXPECT_EQ(tree.broker_count(1), 4u);
  EXPECT_EQ(tree.broker_count(2), 2u);
  EXPECT_EQ(tree.broker_count(3), 1u);
  EXPECT_EQ(tree.aggregator_count(), 7u);
  const auto rows = tree.tier_stats();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].brokers, 8u);
  EXPECT_EQ(rows[0].aggregators, 4u);  // tier-0 feeders
  EXPECT_EQ(rows[2].aggregators, 1u);
  EXPECT_EQ(rows[3].aggregators, 0u);  // nobody feeds from the root
}

TEST(AggregationTree, FlatDegeneratesToSingleBroker) {
  transport::AggregationTree tree(kQueue, transport::TreeOptions{}, nullptr);
  EXPECT_EQ(tree.tier_count(), 1u);
  EXPECT_EQ(tree.aggregator_count(), 0u);
  EXPECT_EQ(&tree.leaf_for("any-host"), &tree.root());
}

TEST(Aggregator, CoalescesPrefilledBatchIntoOneFrame) {
  transport::Broker child;
  child.declare_queue(kQueue);
  child.bind(kQueue, "stats.*");
  transport::Broker parent;
  parent.declare_queue(kQueue);
  parent.bind(kQueue, "stats.*");

  // Pre-fill: 10 same-window chunks for c1, plus 3 + 2 chunks for c2
  // straddling a window boundary — all before the aggregator starts, so
  // the burst consume sees them together.
  const auto log1 = make_synth_log("c1");
  const std::string h1 = log1.serialize_header();
  std::string c1_records;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto rec = make_synth_record(kStart + i * util::kMinute, 10 * i);
    transport::PublishInfo info;
    info.producer = "c1";
    info.seq = i + 1;
    info.now = rec.time;
    ASSERT_EQ(child.publish("stats.c1",
                            h1 + collect::HostLog::serialize_record(rec),
                            info),
              1u);
    c1_records += collect::HostLog::serialize_record(rec);
  }
  const auto log2 = make_synth_log("c2");
  const std::string h2 = log2.serialize_header();
  for (std::uint64_t i = 0; i < 5; ++i) {
    // Records 0-2 in hour 0, records 3-4 in hour 1: two windows.
    const auto t = kStart + (i < 3 ? i * util::kMinute
                                   : util::kHour + i * util::kMinute);
    const auto rec = make_synth_record(t, 100 + i);
    transport::PublishInfo info;
    info.producer = "c2";
    info.seq = i + 1;
    info.now = rec.time;
    ASSERT_EQ(child.publish("stats.c2",
                            h2 + collect::HostLog::serialize_record(rec),
                            info),
              1u);
  }

  transport::AggregatorOptions opts;
  opts.window = util::kHour;
  transport::Aggregator agg("agg-test", {&child}, parent, kQueue, opts,
                            nullptr);
  using namespace std::chrono_literals;
  for (int spin = 0; spin < 5000 && !agg.idle(); ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(agg.idle()) << "aggregator never went idle";
  agg.stop();

  // Everything consumed and acked below; coalesced frames above: one frame
  // for c1 (one window) and two for c2 (window rollover).
  EXPECT_EQ(child.depth(kQueue), 0u);
  EXPECT_EQ(child.unacked_depth(kQueue), 0u);
  EXPECT_EQ(parent.stats().published, 3u);
  const auto s = agg.stats();
  EXPECT_EQ(s.consumed, 15u);
  EXPECT_EQ(s.records_in, 15u);
  EXPECT_EQ(s.frames_out, 3u);
  EXPECT_EQ(s.records_out, 15u);

  std::map<std::string, std::vector<transport::AggFrame>> frames;
  while (auto msg = parent.consume(kQueue, 10ms)) {
    ASSERT_TRUE(transport::AggFrame::is_frame(msg->body));
    frames[msg->routing_key].push_back(transport::AggFrame::parse(msg->body));
    parent.ack(kQueue, msg->delivery_tag);
  }
  ASSERT_EQ(frames["stats.c1"].size(), 1u);
  ASSERT_EQ(frames["stats.c2"].size(), 2u);
  const auto& f1 = frames["stats.c1"][0];
  EXPECT_EQ(f1.producer, "c1");
  EXPECT_EQ(f1.seqs, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9,
                                                 10}));
  // One header copy, then the ten record bodies back to back.
  EXPECT_EQ(f1.payload, h1 + c1_records);
  EXPECT_EQ(frames["stats.c2"][0].seqs,
            (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(frames["stats.c2"][1].seqs, (std::vector<std::uint64_t>{4, 5}));
}

TEST(AggregationTree, DeliversEveryRecordExactlyOnceInOrder) {
  transport::TreeOptions opts;
  opts.leaf_brokers = 4;
  opts.fanout = 2;
  opts.batch_records = 4;  // several frames per host
  transport::AggregationTree tree(kQueue, opts, nullptr);
  transport::RawArchive archive;
  transport::ConsumerOptions copts;
  copts.dedup_window = 0;
  transport::Consumer consumer(tree.root(), archive, kQueue, nullptr, copts,
                               nullptr);

  constexpr std::size_t kHosts = 6;
  constexpr std::uint64_t kRecs = 10;
  for (std::size_t h = 0; h < kHosts; ++h) {
    const std::string host = "n" + std::to_string(h);
    const auto log = make_synth_log(host);
    const std::string header = log.serialize_header();
    for (std::uint64_t i = 0; i < kRecs; ++i) {
      const auto rec =
          make_synth_record(kStart + i * util::kMinute, h * 1000 + i);
      transport::PublishInfo info;
      info.producer = host;
      info.seq = i + 1;
      info.now = rec.time;
      ASSERT_EQ(tree.leaf_for(host).publish(
                    "stats." + host,
                    header + collect::HostLog::serialize_record(rec), info),
                1u);
    }
  }

  tree.quiesce();
  consumer.drain();

  EXPECT_EQ(archive.total_records(), kHosts * kRecs);
  for (std::size_t h = 0; h < kHosts; ++h) {
    const std::string host = "n" + std::to_string(h);
    EXPECT_EQ(archive.seen_count(host), kRecs);
    const auto log = archive.log(host);
    ASSERT_EQ(log.records.size(), kRecs) << host;
    for (std::uint64_t i = 0; i < kRecs; ++i) {
      // Per-host record order survives the tree (and the counter values
      // pin each record to its original position).
      EXPECT_EQ(log.records[i].time, kStart + i * util::kMinute);
      EXPECT_EQ(log.records[i].blocks.at(0).values.at(0), h * 1000 + i);
    }
  }
  // Pre-reduction actually happened: the root saw fewer messages than
  // records (frames of up to batch_records each).
  EXPECT_LT(tree.root().stats().published, kHosts * kRecs);
  EXPECT_GT(tree.root().stats().published, 0u);

  tree.stop();
  consumer.stop();
}

// ---------------------------------------------------------------------------
// Topology-shape determinism: the same seed and fault schedule must produce
// a byte-identical archive whether the transport is flat, 2-tier, or
// 3-tier — and the downstream tsdb load must stay byte-identical across
// worker thread counts.

simhw::Cluster make_cluster(int n) {
  simhw::ClusterConfig cc;
  cc.num_nodes = n;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 0.0;
  return simhw::Cluster(cc);
}

workload::JobSpec job_spec(long id, int nodes, util::SimTime start,
                           util::SimTime runtime) {
  workload::JobSpec job;
  job.jobid = id;
  job.user = "alice";
  job.uid = 1001;
  job.profile = "wrf";
  job.exe = "wrf.exe";
  job.nodes = nodes;
  job.wayness = 8;
  job.submit_time = start - util::kMinute;
  job.start_time = start;
  job.end_time = start + runtime;
  return job;
}

/// Chaos on every transport site, including the aggregator tier. No outage
/// windows on aggregator.publish: a frame's fault time is content-stable,
/// so an outage there would never clear.
std::shared_ptr<util::FaultPlan> tree_chaos_plan(std::uint64_t seed) {
  auto plan = std::make_shared<util::FaultPlan>(seed);
  util::FaultSpec publish;
  publish.drop_rate = 0.05;
  publish.duplicate_rate = 0.02;
  publish.delay_rate = 0.1;
  publish.delay_min = util::kSecond;
  publish.delay_max = 30 * util::kSecond;
  plan->set(std::string(util::kFaultBrokerPublish), publish);
  util::FaultSpec daemon;
  daemon.error_rate = 0.02;
  plan->set(std::string(util::kFaultDaemonPublish), daemon);
  util::FaultSpec agg_publish;
  agg_publish.error_rate = 0.15;
  plan->set(std::string(util::kFaultAggregatorPublish), agg_publish);
  util::FaultSpec agg_crash;
  agg_crash.error_rate = 0.1;
  plan->set(std::string(util::kFaultAggregatorCrash), agg_crash);
  util::FaultSpec crash;
  crash.error_rate = 0.05;
  plan->set(std::string(util::kFaultConsumerCrash), crash);
  return plan;
}

std::string fingerprint(const transport::RawArchive& archive) {
  auto hosts = archive.hosts();
  std::sort(hosts.begin(), hosts.end());
  std::string out;
  for (const auto& host : hosts) {
    out += "== " + host + " ==\n";
    out += archive.log(host).serialize();
  }
  return out;
}

struct ShapeResult {
  std::string archive_bytes;
  std::uint64_t published_unique = 0;
  std::size_t total_records = 0;
};

ShapeResult run_shape(const transport::TreeOptions& topology,
                      std::uint64_t seed) {
  auto cluster = make_cluster(4);
  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = kStart;
  mc.online_analysis = false;
  mc.fault_plan = tree_chaos_plan(seed);
  mc.consumer_options.dedup_window = 0;
  mc.topology = topology;
  core::ClusterMonitor monitor(cluster, mc);

  const auto job = job_spec(500, 4, kStart, 3 * util::kHour);
  monitor.job_started(job, {0, 1, 2, 3});
  monitor.advance_to(kStart + 3 * util::kHour);
  monitor.job_ended(job.jobid);
  monitor.advance_to(kStart + 4 * util::kHour);
  monitor.drain();

  ShapeResult result;
  result.archive_bytes = fingerprint(monitor.archive());
  result.published_unique = monitor.published_unique();
  result.total_records = monitor.archive().total_records();
  return result;
}

TEST(TopologyDeterminism, ArchiveBytesIdenticalAcrossShapes) {
  transport::TreeOptions flat;
  transport::TreeOptions two_tier;
  two_tier.leaf_brokers = 4;
  two_tier.fanout = 4;
  two_tier.batch_records = 8;
  transport::TreeOptions three_tier;
  three_tier.leaf_brokers = 8;
  three_tier.fanout = 2;
  three_tier.batch_records = 4;

  const auto a = run_shape(flat, 977);
  const auto b = run_shape(two_tier, 977);
  const auto c = run_shape(three_tier, 977);

  // Non-vacuous: records flowed and everything published was archived.
  EXPECT_GT(a.total_records, 0u);
  EXPECT_EQ(a.total_records, a.published_unique);
  EXPECT_EQ(b.total_records, b.published_unique);
  EXPECT_EQ(c.total_records, c.published_unique);
  EXPECT_EQ(a.published_unique, b.published_unique);
  EXPECT_EQ(a.published_unique, c.published_unique);
  // The invariant: same seed => byte-identical archive, whatever the tree.
  EXPECT_EQ(a.archive_bytes, b.archive_bytes);
  EXPECT_EQ(a.archive_bytes, c.archive_bytes);
}

TEST(TopologyDeterminism, TsdbQueriesIdenticalAcrossThreadCounts) {
  // One tree-topology run, then the archive -> tsdb load at 1, 2, and 8
  // workers: query results must be byte-identical.
  auto cluster = make_cluster(4);
  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = kStart;
  mc.online_analysis = false;
  mc.fault_plan = tree_chaos_plan(977);
  mc.consumer_options.dedup_window = 0;
  mc.topology.leaf_brokers = 4;
  mc.topology.fanout = 2;
  mc.topology.batch_records = 8;
  core::ClusterMonitor monitor(cluster, mc);
  const auto job = job_spec(501, 4, kStart, 2 * util::kHour);
  monitor.job_started(job, {0, 1, 2, 3});
  monitor.advance_to(kStart + 2 * util::kHour);
  monitor.job_ended(job.jobid);
  monitor.drain();
  ASSERT_GT(monitor.archive().total_records(), 0u);

  tsdb::StoreOptions serial_so;
  serial_so.shards = 16;
  tsdb::Store serial(serial_so);
  const auto serial_stats =
      pipeline::ingest_archive_tsdb(serial, monitor.archive(), nullptr);
  pipeline::TsdbIngestOptions opts;
  opts.batch_points = 64;  // force mid-host flushes
  for (const std::size_t workers : {2u, 8u}) {
    util::ThreadPool pool(workers);
    tsdb::StoreOptions so;
    so.shards = 4;
    tsdb::Store store(so);
    const auto stats =
        pipeline::ingest_archive_tsdb(store, monitor.archive(), &pool, opts);
    EXPECT_EQ(stats.points, serial_stats.points);
    EXPECT_EQ(store.num_points(), serial.num_points());
    tsdb::Query q;
    q.metric = "taccstats.cpu.user";
    q.group_by = {"host"};
    const auto a = serial.query(q);
    const auto b = store.query(q);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].group_tags, b[i].group_tags);
      ASSERT_EQ(a[i].points.size(), b[i].points.size());
      for (std::size_t p = 0; p < a[i].points.size(); ++p) {
        EXPECT_EQ(a[i].points[p].time, b[i].points[p].time);
        EXPECT_EQ(a[i].points[p].value, b[i].points[p].value);
      }
    }
  }
}

TEST(Backpressure, WatermarksPauseTiersAndDaemonsSpool) {
  auto cluster = make_cluster(4);
  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = kStart;
  mc.online_analysis = false;
  mc.consumer_options.dedup_window = 0;
  mc.topology.leaf_brokers = 2;
  mc.topology.fanout = 2;
  mc.topology.batch_records = 4;
  mc.topology.high_watermark = 4;
  mc.topology.low_watermark = 2;
  core::ClusterMonitor monitor(cluster, mc);

  // Kill the consumer and keep collecting: the root fills to its high
  // watermark, the aggregator stops pulling, the leaf queues fill and trip
  // their own watermarks, and the daemons spool locally — the Paused
  // signal cascades down the tree with no control channel.
  monitor.crash_consumer();
  monitor.advance_to(kStart + 2 * util::kHour);

  const auto mid = monitor.resilience_stats();
  EXPECT_GT(mid.paused_windows, 0u) << "no tier ever paused";
  EXPECT_GT(monitor.spool_depth(), 0u) << "daemons never spooled";
  EXPECT_GT(mid.spooled, 0u);

  // Recovery: a fresh consumer drains the root, tiers resume, spools
  // replay, and nothing was lost.
  monitor.restart_consumer();
  monitor.advance_to(kStart + 3 * util::kHour);
  monitor.drain();

  EXPECT_EQ(monitor.spool_depth(), 0u);
  EXPECT_EQ(monitor.archive().total_records(), monitor.published_unique());
  const auto r = monitor.resilience_stats();
  EXPECT_GT(r.resumed_windows, 0u);
  // Every queue ends empty, so every pause crossing was matched by a
  // resume crossing.
  EXPECT_EQ(r.paused_windows, r.resumed_windows);
  EXPECT_EQ(r.spooled, r.replayed);
}

TEST(Backpressure, AggregatorCrashRedeliveryIsAbsorbedByDedup) {
  auto plan = std::make_shared<util::FaultPlan>(31337);
  util::FaultSpec agg_crash;
  agg_crash.error_rate = 0.3;  // NOT 1.0: every rebuilt frame would re-crash
  plan->set(std::string(util::kFaultAggregatorCrash), agg_crash);
  util::FaultSpec agg_publish;
  agg_publish.error_rate = 0.2;
  plan->set(std::string(util::kFaultAggregatorPublish), agg_publish);

  auto cluster = make_cluster(4);
  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = kStart;
  mc.online_analysis = false;
  mc.fault_plan = plan;
  mc.consumer_options.dedup_window = 0;
  mc.topology.leaf_brokers = 4;
  mc.topology.fanout = 2;
  mc.topology.batch_records = 4;
  core::ClusterMonitor monitor(cluster, mc);

  monitor.advance_to(kStart + 3 * util::kHour);
  monitor.drain();

  // Crashes happened, children redelivered, dedup absorbed the overlap:
  // exactly-once end to end regardless.
  const auto r = monitor.resilience_stats();
  EXPECT_GT(r.requeued, 0u) << "no aggregator crash ever fired";
  EXPECT_GT(r.injected_errors, 0u) << "no upward publish ever failed";
  EXPECT_EQ(monitor.archive().total_records(), monitor.published_unique());
}

}  // namespace
}  // namespace tacc
