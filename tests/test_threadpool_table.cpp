// Thread pool semantics and ASCII table rendering.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace tacc::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZero) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 50) {
                                     throw std::runtime_error("x");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 1000; ++i) {
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 500500);
}

TEST(ThreadPool, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"A", "LongHeader"});
  t.row({"xx", "1"});
  t.row({"y", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("A   LongHeader"), std::string::npos);
  EXPECT_NE(s.find("xx  1"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t;
  t.header({"A", "B", "C"});
  t.row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, TruncatesLongRows) {
  TextTable t;
  t.header({"A"});
  t.row({"1", "dropped"});
  const std::string s = t.render();
  EXPECT_EQ(s.find("dropped"), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 3), "3.14");
  EXPECT_EQ(TextTable::num(1234567.0, 4), "1.235e+06");
}

TEST(TextTable, EmptyTable) {
  TextTable t;
  EXPECT_EQ(t.render(), "");
}

}  // namespace
}  // namespace tacc::util
