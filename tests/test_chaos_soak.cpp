// Chaos soak: a randomized fault schedule (rates, outage windows, crash
// points all drawn from one seed) runs through the full daemon-mode stack —
// real broker/consumer threads, queue limits, consumer crashes — and then
// conservation invariants are checked: every unique record is archived,
// dead-lettered, or spooled; nothing is lost and nothing is archived twice.
//
// The seed comes from the TACC_CHAOS_SEED environment variable when set
// (the CI matrix pins three), otherwise a fixed default. On failure the
// seed is part of every assertion message, so a red run is reproducible
// with TACC_CHAOS_SEED=<seed> ctest -R chaos.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "core/monitor.hpp"
#include "transport/frame.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace tacc {
namespace {

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;  // 2016-01-04

std::uint64_t chaos_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("TACC_CHAOS_SEED")) {
    char* end = nullptr;
    const auto v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return v;
  }
  return fallback;
}

/// Draws a full fault schedule from the seed: every rate, window, and
/// structural choice (queue limit on/off, crash cadence) is seed-derived.
std::shared_ptr<util::FaultPlan> random_plan(util::Rng& rng,
                                             std::uint64_t seed) {
  auto plan = std::make_shared<util::FaultPlan>(seed);
  util::FaultSpec publish;
  publish.drop_rate = rng.uniform(0.0, 0.15);
  publish.duplicate_rate = rng.uniform(0.0, 0.05);
  publish.delay_rate = rng.uniform(0.0, 0.2);
  publish.delay_min = util::kSecond;
  publish.delay_max = util::kSecond + static_cast<util::SimTime>(
                                          rng.uniform(0.0, 60.0) *
                                          static_cast<double>(util::kSecond));
  plan->set(std::string(util::kFaultBrokerPublish), publish);
  util::FaultSpec daemon;
  daemon.error_rate = rng.uniform(0.0, 0.05);
  const auto outage_start =
      kStart + rng.uniform_int(0, 5) * 30 * util::kMinute;
  daemon.outages.push_back(
      {outage_start, outage_start + rng.uniform_int(1, 6) * util::kMinute *
                                        10});
  plan->set(std::string(util::kFaultDaemonPublish), daemon);
  util::FaultSpec crash;
  crash.error_rate = rng.uniform(0.0, 0.08);
  plan->set(std::string(util::kFaultConsumerCrash), crash);
  return plan;
}

TEST(ChaosSoak, DaemonModeConservesEveryRecord) {
  const auto seed = chaos_seed(20160104);
  SCOPED_TRACE("TACC_CHAOS_SEED=" + std::to_string(seed));
  util::Rng rng("chaos.soak", seed);

  auto cluster = [&] {
    simhw::ClusterConfig cc;
    cc.num_nodes = static_cast<std::size_t>(rng.uniform_int(2, 6));
    cc.topology = simhw::Topology{2, 4, false};
    cc.phi_fraction = 0.0;
    return simhw::Cluster(cc);
  }();

  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = kStart;
  mc.interval = 10 * util::kMinute;
  mc.online_analysis = false;
  mc.fault_plan = random_plan(rng, seed);
  mc.retry.max_attempts = static_cast<int>(rng.uniform_int(2, 6));
  // Unbounded dedup memory: the conservation check below needs the full
  // seen-set, not a sliding window.
  mc.consumer_options.dedup_window = 0;
  const bool limited = rng.bernoulli(0.5);
  if (limited) {
    mc.queue_limit = static_cast<std::size_t>(rng.uniform_int(4, 32));
  }
  core::ClusterMonitor monitor(cluster, mc);

  const auto hours = rng.uniform_int(3, 6);
  const auto crashes = rng.uniform_int(0, 3);
  for (std::int64_t h = 0; h < hours; ++h) {
    monitor.advance_to(kStart + (h + 1) * util::kHour);
    if (h < crashes) {
      monitor.crash_consumer();
      // Let the cluster run headless for a while: the broker buffers.
      monitor.advance_to(monitor.now() + rng.uniform_int(1, 3) * 10 *
                                             util::kMinute);
      monitor.restart_consumer();
    }
  }
  monitor.drain();

  // --- Conservation ---------------------------------------------------
  // Each unique (producer, seq) ends in exactly one place: the archive,
  // the dead-letter store (only its non-delivered seqs count), or a
  // daemon's local spool.
  std::size_t archived_unique = 0;
  for (const auto& host : monitor.archive().hosts()) {
    archived_unique += monitor.archive().seen_count(host);
  }
  std::set<std::pair<std::string, std::uint64_t>> dead_unique;
  for (const auto& msg :
       monitor.broker().drain_dead_letters("raw_stats")) {
    if (!monitor.archive().was_seen(msg.producer, msg.seq)) {
      dead_unique.insert({msg.producer, msg.seq});
    }
  }
  EXPECT_EQ(archived_unique + dead_unique.size() + monitor.spool_depth(),
            monitor.published_unique())
      << "lost or double-counted records";
  // Zero duplicates in the archive: records per host == unique seqs.
  EXPECT_EQ(monitor.archive().total_records(), archived_unique);
  // A clean drain leaves nothing queued.
  EXPECT_EQ(monitor.broker().depth("raw_stats"), 0u);
  // Spool bookkeeping is self-consistent: every record ever pushed was
  // replayed, aged out, or is still parked.
  const auto r = monitor.resilience_stats();
  EXPECT_EQ(r.spooled,
            r.replayed + r.spool_dropped + monitor.spool_depth());
}

TEST(ChaosSoak, TreeTopologyConservesEveryRecord) {
  const auto seed = chaos_seed(20160104);
  SCOPED_TRACE("TACC_CHAOS_SEED=" + std::to_string(seed));
  util::Rng rng("chaos.tree", seed);

  auto cluster = [&] {
    simhw::ClusterConfig cc;
    cc.num_nodes = static_cast<std::size_t>(rng.uniform_int(3, 8));
    cc.topology = simhw::Topology{2, 4, false};
    cc.phi_fraction = 0.0;
    return simhw::Cluster(cc);
  }();

  // The flat plan plus the aggregator-tier sites. No outage windows on
  // aggregator.publish: a frame's fault time is content-stable, so an
  // outage there would never clear.
  auto plan = random_plan(rng, seed);
  util::FaultSpec agg_publish;
  agg_publish.error_rate = rng.uniform(0.0, 0.4);
  plan->set(std::string(util::kFaultAggregatorPublish), agg_publish);
  util::FaultSpec agg_crash;
  // Strictly < 1.0: at rate 1.0 every rebuilt frame re-crashes forever.
  agg_crash.error_rate = rng.uniform(0.0, 0.3);
  plan->set(std::string(util::kFaultAggregatorCrash), agg_crash);

  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = kStart;
  mc.interval = 10 * util::kMinute;
  mc.online_analysis = false;
  mc.fault_plan = plan;
  mc.retry.max_attempts = static_cast<int>(rng.uniform_int(2, 6));
  mc.consumer_options.dedup_window = 0;
  // Seed-derived tree shape and tuning.
  mc.topology.leaf_brokers = static_cast<std::size_t>(rng.uniform_int(2, 8));
  mc.topology.fanout = static_cast<std::size_t>(rng.uniform_int(2, 4));
  mc.topology.batch_records = static_cast<std::size_t>(rng.uniform_int(2, 16));
  mc.topology.window =
      rng.bernoulli(0.5) ? util::kHour : 30 * util::kMinute;
  if (rng.bernoulli(0.5)) {
    mc.topology.high_watermark =
        static_cast<std::size_t>(rng.uniform_int(8, 64));
  }
  if (rng.bernoulli(0.4)) {
    mc.queue_limit = static_cast<std::size_t>(rng.uniform_int(8, 32));
  }
  core::ClusterMonitor monitor(cluster, mc);

  const auto hours = rng.uniform_int(3, 6);
  const auto crashes = rng.uniform_int(0, 3);
  for (std::int64_t h = 0; h < hours; ++h) {
    monitor.advance_to(kStart + (h + 1) * util::kHour);
    if (h < crashes) {
      monitor.crash_consumer();
      monitor.advance_to(monitor.now() + rng.uniform_int(1, 3) * 10 *
                                             util::kMinute);
      monitor.restart_consumer();
    }
  }
  monitor.drain();

  // --- Conservation, frame-aware -------------------------------------
  // Dead letters can now be coalesced frames parked at any tier, so the
  // accounting walks every tier's DLQ and expands frames into their
  // per-record (producer, seq) identities.
  std::size_t archived_unique = 0;
  for (const auto& host : monitor.archive().hosts()) {
    archived_unique += monitor.archive().seen_count(host);
  }
  std::set<std::pair<std::string, std::uint64_t>> dead_unique;
  for (const auto& msg : monitor.topology().drain_all_dead_letters()) {
    for (const auto& [producer, rec_seq] :
         transport::AggFrame::message_seqs(msg)) {
      if (!monitor.archive().was_seen(producer, rec_seq)) {
        dead_unique.insert({producer, rec_seq});
      }
    }
  }
  EXPECT_EQ(archived_unique + dead_unique.size() + monitor.spool_depth(),
            monitor.published_unique())
      << "lost or double-counted records";
  EXPECT_EQ(monitor.archive().total_records(), archived_unique);
  EXPECT_EQ(monitor.broker().depth("raw_stats"), 0u);
  const auto r = monitor.resilience_stats();
  EXPECT_EQ(r.spooled,
            r.replayed + r.spool_dropped + monitor.spool_depth());
  // Pause/resume accounting balances once every queue has drained.
  EXPECT_EQ(r.paused_windows, r.resumed_windows);
}

TEST(ChaosSoak, CronModeConservesEveryRecord) {
  const auto seed = chaos_seed(20160104);
  SCOPED_TRACE("TACC_CHAOS_SEED=" + std::to_string(seed));
  util::Rng rng("chaos.cron", seed);

  auto cluster = [&] {
    simhw::ClusterConfig cc;
    cc.num_nodes = static_cast<std::size_t>(rng.uniform_int(2, 5));
    cc.topology = simhw::Topology{1, 8, false};
    cc.phi_fraction = 0.0;
    return simhw::Cluster(cc);
  }();

  auto plan = std::make_shared<util::FaultPlan>(seed);
  util::FaultSpec rsync;
  rsync.error_rate = rng.uniform(0.1, 0.6);
  plan->set(std::string(util::kFaultCronRsync), rsync);
  util::FaultSpec disk;
  disk.error_rate = rng.uniform(0.0, 0.1);
  plan->set(std::string(util::kFaultCronDisk), disk);

  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Cron;
  mc.start = kStart;
  mc.interval = 30 * util::kMinute;
  mc.online_analysis = false;
  mc.fault_plan = plan;
  core::ClusterMonitor monitor(cluster, mc);

  const auto days = rng.uniform_int(2, 4);
  monitor.advance_to(kStart + days * util::kDay);

  const auto stats = monitor.cron_stats();
  EXPECT_GT(stats.collected_records, 0u);
  // Conservation: collected = staged (archived) + lost (disk full /
  // failed nodes) + backlog (node-local, awaiting rotation or a
  // successful rsync).
  EXPECT_EQ(stats.collected_records,
            stats.staged_records + stats.lost_records +
                static_cast<std::uint64_t>(monitor.cron_backlog()))
      << "cron conservation violated";
  EXPECT_EQ(monitor.archive().total_records(), stats.staged_records);
  if (stats.rsync_failures > 0) {
    // Failed stagings must not lose data: lost comes only from disk-full.
    EXPECT_EQ(stats.lost_records, stats.disk_full_drops);
  }
}

}  // namespace
}  // namespace tacc
