// Workload engine: jiffy conservation, counter monotonicity, phase logic
// (idle nodes, failure, compile), shared-node core partitioning, memory and
// process accounting.
#include <gtest/gtest.h>

#include "simhw/cluster.hpp"
#include "workload/engine.hpp"
#include "workload/generator.hpp"

namespace tacc::workload {
namespace {

constexpr util::SimTime kStart = 1451606400LL * util::kSecond;

simhw::Cluster make_cluster(int nodes = 2) {
  simhw::ClusterConfig cc;
  cc.num_nodes = nodes;
  cc.topology = simhw::Topology{2, 4, false};  // 8 cpus
  cc.phi_fraction = 1.0;
  return simhw::Cluster(cc);
}

JobSpec make_job(const char* profile = "wrf", int nodes = 2,
                 util::SimTime runtime = util::kHour) {
  JobSpec job;
  job.jobid = 100;
  job.user = "alice";
  job.uid = 1001;
  job.profile = profile;
  job.exe = find_profile(profile).exe;
  job.nodes = nodes;
  job.wayness = 8;
  job.submit_time = kStart - util::kMinute;
  job.start_time = kStart;
  job.end_time = kStart + runtime;
  return job;
}

TEST(Engine, JiffiesConserveElapsedTime) {
  auto cluster = make_cluster(1);
  Engine engine(cluster, kStart);
  engine.start_job(make_job("wrf", 1), {0});
  engine.advance(10 * util::kMinute);
  // Every core's jiffies must sum to ~elapsed seconds * 100.
  for (const auto& core : cluster.node(0).state().cores) {
    const auto total =
        core.user + core.nice + core.system + core.idle + core.iowait;
    EXPECT_NEAR(static_cast<double>(total), 600.0 * 100.0, 150.0);
  }
}

TEST(Engine, CountersAreMonotonic) {
  auto cluster = make_cluster(1);
  Engine engine(cluster, kStart);
  engine.start_job(make_job("genomics_io", 1), {0});
  std::uint64_t last_inst = 0, last_mdc = 0, last_energy = 0;
  for (int step = 0; step < 6; ++step) {
    engine.advance(util::kMinute);
    const auto& st = cluster.node(0).state();
    EXPECT_GE(st.cores[0].instructions, last_inst);
    EXPECT_GE(st.lustre.mdc_reqs, last_mdc);
    EXPECT_GE(st.sockets[0].energy_pkg_uj, last_energy);
    last_inst = st.cores[0].instructions;
    last_mdc = st.lustre.mdc_reqs;
    last_energy = st.sockets[0].energy_pkg_uj;
  }
  EXPECT_GT(last_inst, 0u);
  EXPECT_GT(last_mdc, 0u);
}

TEST(Engine, BusyJobDrivesUserJiffies) {
  auto cluster = make_cluster(1);
  Engine engine(cluster, kStart);
  engine.start_job(make_job("mc_scalar", 1), {0});
  engine.advance(10 * util::kMinute);
  const auto& core = cluster.node(0).state().cores[0];
  const double user_frac =
      static_cast<double>(core.user) /
      static_cast<double>(core.user + core.nice + core.system + core.idle +
                          core.iowait);
  EXPECT_GT(user_frac, 0.9);  // mc_scalar base is 0.96
}

TEST(Engine, IdleNodeFractionLeavesNodesIdle) {
  auto cluster = make_cluster(4);
  Engine engine(cluster, kStart);
  engine.start_job(make_job("idle_half", 4), {0, 1, 2, 3});
  engine.advance(10 * util::kMinute);
  // idle_half keeps the last half of the allocation idle.
  const auto user_of = [&](int n) {
    return cluster.node(n).state().cores[0].user;
  };
  EXPECT_GT(user_of(0), 100u);
  EXPECT_GT(user_of(1), 100u);
  EXPECT_EQ(user_of(2), 0u);
  EXPECT_EQ(user_of(3), 0u);
}

TEST(Engine, FailAtStopsDemand) {
  auto cluster = make_cluster(1);
  Engine engine(cluster, kStart);
  auto job = make_job("wrf", 1, util::kHour);
  job.fail_at_frac = 0.5;
  engine.start_job(job, {0});
  engine.advance(20 * util::kMinute);  // frac ~0.33: running
  const auto user_before = cluster.node(0).state().cores[0].user;
  EXPECT_GT(user_before, 0u);
  engine.advance(20 * util::kMinute);  // passes 0.5 in here
  const auto user_mid = cluster.node(0).state().cores[0].user;
  engine.advance(15 * util::kMinute);  // frac > 0.9: dead
  const auto user_after = cluster.node(0).state().cores[0].user;
  EXPECT_EQ(user_after, user_mid);  // no further user time
}

TEST(Engine, CompilePhaseHasNoVectorFlops) {
  auto cluster = make_cluster(1);
  Engine engine(cluster, kStart);
  engine.start_job(make_job("compile_run", 1, 10 * util::kHour), {0});
  engine.advance(30 * util::kMinute);  // frac 0.05 < 0.12: compiling
  const auto& core = cluster.node(0).state().cores[0];
  EXPECT_EQ(core.events[static_cast<std::size_t>(
                simhw::CoreEvent::FpVector)],
            0u);
  EXPECT_GT(core.instructions, 0u);
  engine.advance(3 * util::kHour);  // well past the compile phase
  EXPECT_GT(core.events[static_cast<std::size_t>(
                simhw::CoreEvent::FpVector)],
            0u);
}

TEST(Engine, SharedJobsClaimDisjointCores) {
  auto cluster = make_cluster(1);
  Engine engine(cluster, kStart);
  auto a = make_job("mc_scalar", 1);
  a.jobid = 1;
  a.wayness = 4;
  auto b = make_job("mc_scalar", 1);
  b.jobid = 2;
  b.wayness = 4;
  engine.start_job(a, {0});
  engine.start_job(b, {0});
  EXPECT_EQ(engine.jobs_on(0), (std::vector<long>{1, 2}));
  engine.advance(10 * util::kMinute);
  // All 8 cores busy: 4 from each job.
  for (int cpu = 0; cpu < 8; ++cpu) {
    EXPECT_GT(cluster.node(0).state().cores[cpu].user, 30000u)
        << "cpu " << cpu;
  }
}

TEST(Engine, ProcessesSpawnedAndKilled) {
  auto cluster = make_cluster(1);
  Engine engine(cluster, kStart);
  auto job = make_job("wrf", 1);
  engine.start_job(job, {0});
  const auto pids = cluster.node(0).list_pids();
  EXPECT_EQ(pids.size(), 16u);  // wrf: 16 ranks per node
  const auto& proc = cluster.node(0).state().processes.at(pids[0]);
  EXPECT_EQ(proc.name, "wrf.exe");
  EXPECT_EQ(proc.jobid, 100);
  EXPECT_EQ(proc.uid, 1001);
  engine.end_job(100);
  EXPECT_TRUE(cluster.node(0).list_pids().empty());
}

TEST(Engine, MemoryAccountingFollowsJobs) {
  auto cluster = make_cluster(1);
  Engine engine(cluster, kStart);
  const auto baseline = cluster.node(0).state().mem.used_kb;
  engine.start_job(make_job("wrf", 1), {0});
  const auto with_job = cluster.node(0).state().mem.used_kb;
  EXPECT_GT(with_job, baseline + 4ULL * 1024 * 1024);  // wrf ~6 GB
  engine.end_job(100);
  EXPECT_EQ(cluster.node(0).state().mem.used_kb, baseline);
}

TEST(Engine, MemUsageClampsAtTotal) {
  auto cluster = make_cluster(1);
  Engine engine(cluster, kStart);
  auto job = make_job("largemem_heavy", 1);  // 640 GB on a 32 GB node
  engine.start_job(job, {0});
  EXPECT_EQ(cluster.node(0).state().mem.used_kb,
            cluster.node(0).state().mem.total_kb);
}

TEST(Engine, MicUtilizationOnlyForOffloadApps) {
  auto cluster = make_cluster(1);
  Engine engine(cluster, kStart);
  engine.start_job(make_job("mic_offload", 1), {0});
  engine.advance(10 * util::kMinute);
  const auto& mic = cluster.node(0).state().mic;
  EXPECT_GT(mic.user_jiffies, 0u);
  const double util_frac =
      static_cast<double>(mic.user_jiffies) /
      static_cast<double>(mic.user_jiffies + mic.sys_jiffies +
                          mic.idle_jiffies);
  EXPECT_NEAR(util_frac, 0.55, 0.1);
}

TEST(Engine, FailedNodesFreeze) {
  auto cluster = make_cluster(2);
  Engine engine(cluster, kStart);
  engine.start_job(make_job("wrf", 2), {0, 1});
  engine.advance(util::kMinute);
  cluster.fail_node(1);
  const auto frozen = cluster.node(1).state().cores[0].user;
  engine.advance(10 * util::kMinute);
  EXPECT_EQ(cluster.node(1).state().cores[0].user, frozen);
  EXPECT_GT(cluster.node(0).state().cores[0].user, frozen);
}

TEST(Engine, HostnamesOfRunningJob) {
  auto cluster = make_cluster(2);
  Engine engine(cluster, kStart);
  engine.start_job(make_job("wrf", 2), {0, 1});
  EXPECT_EQ(engine.hostnames_of(100),
            (std::vector<std::string>{"c400-001", "c400-002"}));
  EXPECT_TRUE(engine.hostnames_of(999).empty());
  EXPECT_EQ(engine.nodes_of(999), nullptr);
}

TEST(Engine, IoHeavyProfileLowersUserFraction) {
  auto cluster = make_cluster(2);
  Engine engine(cluster, kStart);
  auto compute = make_job("mc_scalar", 1);
  compute.jobid = 1;
  auto io = make_job("genomics_io", 1);
  io.jobid = 2;
  engine.start_job(compute, {0});
  engine.start_job(io, {1});
  engine.advance(10 * util::kMinute);
  auto user_frac = [&](int n) {
    const auto& c = cluster.node(n).state().cores[0];
    return static_cast<double>(c.user) /
           static_cast<double>(c.user + c.nice + c.system + c.idle +
                               c.iowait);
  };
  EXPECT_GT(user_frac(0), user_frac(1) + 0.1);
}

}  // namespace
}  // namespace tacc::workload
