// The extended device-collector set (block, numa, vm, vfs, sysv_shm,
// tmpfs) and the engine demand that drives it.
#include <gtest/gtest.h>

#include "collect/collectors_extra.hpp"
#include "collect/registry.hpp"
#include "workload/engine.hpp"
#include "workload/generator.hpp"

namespace tacc::collect {
namespace {

simhw::Node make_node() {
  simhw::NodeConfig nc;
  nc.topology = simhw::Topology{2, 2, false};
  return simhw::Node(nc);
}

TEST(NumaCollector, OneBlockPerNumaNode) {
  auto node = make_node();
  node.state().numa[0].numa_hit = 1000;
  node.state().numa[1].numa_miss = 50;
  NumaCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].device, "0");
  EXPECT_EQ(out[1].device, "1");
  EXPECT_EQ(out[0].values[*c.schema().index_of("numa_hit")], 1000u);
  EXPECT_EQ(out[1].values[*c.schema().index_of("numa_miss")], 50u);
}

TEST(VmCollector, ReadsVmstatFields) {
  auto node = make_node();
  node.state().vm.pgfault = 777;
  node.state().vm.pgmajfault = 3;
  node.state().vm.pgpgin = 123;
  VmCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values[*c.schema().index_of("pgfault")], 777u);
  EXPECT_EQ(out[0].values[*c.schema().index_of("pgmajfault")], 3u);
  EXPECT_EQ(out[0].values[*c.schema().index_of("pgpgin")], 123u);
}

TEST(BlockCollector, SectorsScaleToBytes) {
  auto node = make_node();
  node.state().block.sectors_read = 100;  // 51200 bytes
  node.state().block.reads_completed = 4;
  node.state().block.io_ticks_ms = 250;
  BlockCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].device, "sda");
  const auto& sch = c.schema();
  EXPECT_EQ(out[0].values[*sch.index_of("rd_bytes")], 100u);  // raw sectors
  EXPECT_DOUBLE_EQ(sch.entry(*sch.index_of("rd_bytes")).scale, 512.0);
  EXPECT_EQ(out[0].values[*sch.index_of("rd_ios")], 4u);
  EXPECT_EQ(out[0].values[*sch.index_of("io_ticks")], 250u);
}

TEST(VfsCollector, GaugesFromProcSysFs) {
  auto node = make_node();
  node.state().vfs.dentry_count = 54321;
  node.state().vfs.file_count = 222;
  VfsCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values[*c.schema().index_of("dentry_use")], 54321u);
  EXPECT_EQ(out[0].values[*c.schema().index_of("file_use")], 222u);
  EXPECT_FALSE(c.schema().entry(0).cumulative);
}

TEST(SysvShmCollector, AggregatesSegments) {
  auto node = make_node();
  node.state().shm.sysv_segments = 2;
  node.state().shm.sysv_bytes = 4096;
  SysvShmCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values[0], 2u);
  EXPECT_EQ(out[0].values[1], 4096u);
}

TEST(SysvShmCollector, ZeroSegmentsStillReports) {
  auto node = make_node();
  SysvShmCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values[0], 0u);
}

TEST(TmpfsCollector, ReadsBytes) {
  auto node = make_node();
  node.state().shm.tmpfs_bytes = 987654;
  TmpfsCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values[0], 987654u);
}

TEST(Registry, ExtendedSetIncluded) {
  auto node = make_node();
  const auto collectors = make_collectors(node);
  std::vector<std::string> types;
  for (const auto& c : collectors) types.push_back(c->schema().type());
  for (const char* t :
       {"numa", "vm", "block", "vfs", "sysv_shm", "tmpfs"}) {
    EXPECT_NE(std::find(types.begin(), types.end(), t), types.end()) << t;
  }
}

TEST(EngineExtra, LocalDiskAppDrivesBlockAndVm) {
  simhw::ClusterConfig cc;
  cc.num_nodes = 1;
  cc.topology = simhw::Topology{2, 4, false};
  simhw::Cluster cluster(cc);
  workload::Engine engine(cluster, 0);
  workload::JobSpec job;
  job.jobid = 1;
  job.profile = "genomics_io";  // stages its database to local disk
  job.exe = "blastn";
  job.nodes = 1;
  job.wayness = 8;
  job.start_time = 0;
  job.end_time = util::kHour;
  engine.start_job(job, {0});
  engine.advance(10 * util::kMinute);
  const auto& st = cluster.node(0).state();
  EXPECT_GT(st.block.sectors_read, 0u);
  EXPECT_GT(st.vm.pgpgin, 0u);
  EXPECT_GT(st.vm.pgfault, 0u);
  EXPECT_GT(st.shm.tmpfs_bytes, 0u);  // mmapped index in /dev/shm
  // NUMA allocations track memory traffic.
  EXPECT_GT(st.numa[0].numa_hit, 0u);
  EXPECT_GT(st.numa[0].local_node, 0u);
}

TEST(EngineExtra, ShmReleasedAtJobEnd) {
  simhw::ClusterConfig cc;
  cc.num_nodes = 1;
  simhw::Cluster cluster(cc);
  workload::Engine engine(cluster, 0);
  workload::JobSpec job;
  job.jobid = 2;
  job.profile = "largemem_heavy";  // SysV segments
  job.exe = "velvetg";
  job.nodes = 1;
  job.start_time = 0;
  job.end_time = util::kHour;
  engine.start_job(job, {0});
  EXPECT_GT(cluster.node(0).state().shm.sysv_bytes, 0u);
  EXPECT_EQ(cluster.node(0).state().shm.sysv_segments, 1u);
  engine.end_job(2);
  EXPECT_EQ(cluster.node(0).state().shm.sysv_bytes, 0u);
  EXPECT_EQ(cluster.node(0).state().shm.sysv_segments, 0u);
}

TEST(EngineExtra, ComputeOnlyAppTouchesNoDisk) {
  simhw::ClusterConfig cc;
  cc.num_nodes = 1;
  simhw::Cluster cluster(cc);
  workload::Engine engine(cluster, 0);
  workload::JobSpec job;
  job.jobid = 3;
  job.profile = "mc_scalar";
  job.exe = "mcrun";
  job.nodes = 1;
  job.start_time = 0;
  job.end_time = util::kHour;
  engine.start_job(job, {0});
  engine.advance(10 * util::kMinute);
  EXPECT_EQ(cluster.node(0).state().block.sectors_read, 0u);
  EXPECT_EQ(cluster.node(0).state().block.sectors_written, 0u);
}

}  // namespace
}  // namespace tacc::collect
