// Property-based round trip for the raw record text format: seeded random
// HostLogs must survive serialize -> parse exactly, and corrupted inputs
// (truncated tails, snipped bytes) must fail with an exception rather than
// crash or silently mis-parse — the same contract Spool::load_day relies on
// when re-ingesting historical day files.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "collect/rawfile.hpp"
#include "transport/spool.hpp"
#include "util/rng.hpp"

namespace tacc::collect {
namespace {

constexpr util::SimTime kEpoch = 1451606400LL * util::kSecond;  // 2016-01-01

std::string random_ident(util::Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789-_";
  const auto len = static_cast<std::size_t>(rng.uniform_int(
      1, static_cast<std::int64_t>(max_len)));
  std::string s;
  for (std::size_t i = 0; i < len; ++i) {
    s += kAlphabet[static_cast<std::size_t>(
        rng.uniform_int(0, sizeof(kAlphabet) - 2))];
  }
  return s;
}

Schema random_schema(util::Rng& rng, const std::string& type) {
  std::vector<SchemaEntry> entries;
  const auto n = rng.uniform_int(1, 6);
  for (std::int64_t i = 0; i < n; ++i) {
    SchemaEntry e;
    e.key = "k" + std::to_string(i) + random_ident(rng, 4);
    e.cumulative = rng.bernoulli(0.7);
    if (rng.bernoulli(0.3)) e.width_bits = rng.bernoulli(0.5) ? 32 : 48;
    if (rng.bernoulli(0.3)) e.unit = random_ident(rng, 5);
    entries.push_back(std::move(e));
  }
  return Schema(type, std::move(entries));
}

/// A random but well-formed HostLog: every block's type has a schema and
/// the value count matches the schema arity (what a real collector emits).
HostLog random_log(std::uint64_t seed) {
  util::Rng rng("roundtrip.log", seed);
  HostLog log;
  log.hostname = "c" + std::to_string(rng.uniform_int(100, 999)) + "-" +
                 std::to_string(rng.uniform_int(100, 999));
  log.arch = random_ident(rng, 6);
  const auto num_types = rng.uniform_int(1, 4);
  for (std::int64_t t = 0; t < num_types; ++t) {
    log.schemas.push_back(
        random_schema(rng, "t" + std::to_string(t) + random_ident(rng, 3)));
  }
  const auto num_records = rng.uniform_int(0, 12);
  for (std::int64_t r = 0; r < num_records; ++r) {
    Record rec;
    rec.time = kEpoch + r * 600 * util::kSecond +
               rng.uniform_int(0, 59) * util::kSecond;
    const auto num_jobs = rng.uniform_int(0, 3);
    for (std::int64_t j = 0; j < num_jobs; ++j) {
      rec.jobids.push_back(static_cast<long>(rng.uniform_int(1, 1000000)));
    }
    if (rng.bernoulli(0.2)) {
      rec.mark = rng.bernoulli(0.5) ? "begin" : "end";
    }
    for (const auto& schema : log.schemas) {
      const auto num_devices = rng.uniform_int(0, 3);
      for (std::int64_t d = 0; d < num_devices; ++d) {
        RawBlock block;
        block.type = schema.type();
        block.device = rng.bernoulli(0.2) ? std::string{}
                                          : std::to_string(d);
        for (std::size_t k = 0; k < schema.size(); ++k) {
          // Bias toward edge values: 0, small, and near-2^64.
          const double p = rng.uniform();
          if (p < 0.2) {
            block.values.push_back(0);
          } else if (p < 0.4) {
            block.values.push_back(~0ULL - static_cast<std::uint64_t>(
                                               rng.uniform_int(0, 5)));
          } else {
            block.values.push_back(static_cast<std::uint64_t>(rng()));
          }
        }
        rec.blocks.push_back(std::move(block));
      }
    }
    log.records.push_back(std::move(rec));
  }
  return log;
}

TEST(RawRoundtrip, RandomLogsSurviveExactly) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto log = random_log(seed);
    const auto text = log.serialize();
    HostLog parsed;
    ASSERT_NO_THROW(parsed = HostLog::parse(text)) << "seed " << seed;
    EXPECT_EQ(parsed.hostname, log.hostname) << "seed " << seed;
    EXPECT_EQ(parsed.arch, log.arch) << "seed " << seed;
    ASSERT_EQ(parsed.schemas.size(), log.schemas.size()) << "seed " << seed;
    for (std::size_t i = 0; i < log.schemas.size(); ++i) {
      EXPECT_EQ(parsed.schemas[i].spec_line(), log.schemas[i].spec_line())
          << "seed " << seed;
    }
    EXPECT_EQ(parsed.records, log.records) << "seed " << seed;
    // Second trip is a fixed point.
    EXPECT_EQ(parsed.serialize(), text) << "seed " << seed;
  }
}

TEST(RawRoundtrip, TruncatedTailsFailCleanlyOrParsePrefix) {
  // Cutting a serialized log anywhere must never crash: the parser either
  // throws std::invalid_argument or returns a prefix of the records (the
  // final record may itself be truncated; everything before it must be
  // byte-exact).
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto log = random_log(seed);
    if (log.records.empty()) continue;
    const auto text = log.serialize();
    for (std::size_t cut = 0; cut < text.size();
         cut += 1 + text.size() / 97) {
      const auto partial = text.substr(0, cut);
      try {
        const auto parsed = HostLog::parse(partial);
        // Whatever parsed must be a prefix-consistent subset.
        ASSERT_LE(parsed.records.size(), log.records.size());
        for (std::size_t r = 0; r + 1 < parsed.records.size(); ++r) {
          // All but the possibly-truncated last record match exactly.
          EXPECT_EQ(parsed.records[r], log.records[r])
              << "seed " << seed << " cut " << cut;
        }
      } catch (const std::invalid_argument&) {
        // Clean rejection is fine.
      }
    }
  }
}

TEST(RawRoundtrip, CorruptedBytesNeverCrash) {
  const auto log = random_log(3);
  const auto text = log.serialize();
  util::Rng rng("roundtrip.corrupt", 1);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = text;
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(1, 255));
    try {
      (void)HostLog::parse(mutated);
    } catch (const std::invalid_argument&) {
      // Expected for most mutations.
    }
  }
}

TEST(RawRoundtrip, GarbageHeadersRejected) {
  EXPECT_THROW(HostLog::parse(""), std::invalid_argument);
  EXPECT_THROW(HostLog::parse("$bogus 9.9\n"), std::invalid_argument);
  EXPECT_THROW(HostLog::parse("no header at all\n"), std::invalid_argument);
  EXPECT_THROW(
      HostLog::parse("$tacc_stats 2.1\n$hostname h\n$arch x\n"
                     "1443657600 -\ncpu 0 1 2\n"),
      std::invalid_argument);  // data row with no schema for its type
}

TEST(RawRoundtrip, SpoolSurvivesRoundTripAndRejectsTruncatedFiles) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "ts_roundtrip_spool_test";
  fs::remove_all(root);
  transport::Spool spool(root);

  const auto log = random_log(7);
  spool.write_host(log);
  const auto days = spool.days();
  ASSERT_FALSE(days.empty());

  // Full files load back intact.
  transport::RawArchive archive;
  std::size_t loaded = 0;
  for (const auto& day : days) loaded += spool.load_day(day, archive);
  EXPECT_EQ(loaded, log.records.size());
  EXPECT_EQ(archive.total_records(), log.records.size());

  // Truncate one file mid-record (a crashed writer): load_day of that day
  // must throw, not crash, and must not corrupt the archive.
  const auto day = days.front();
  const auto hosts = spool.hosts(day);
  ASSERT_FALSE(hosts.empty());
  const fs::path file = root / day / hosts.front();
  const auto size = fs::file_size(file);
  ASSERT_GT(size, 10u);
  fs::resize_file(file, size - size / 3);
  {
    // Append a malformed half line so the tail is definitely broken.
    std::ofstream out(file, std::ios::app);
    out << "\ncpu 0 12 garbage";
  }
  transport::RawArchive archive2;
  EXPECT_THROW(spool.load_day(day, archive2), std::invalid_argument);
  fs::remove_all(root);
}

}  // namespace
}  // namespace tacc::collect
