// Device collectors: each reads the simulated hardware surface and must
// reproduce the ground truth through the text/register quirks; the registry
// must auto-configure per architecture, topology, and build options.
#include <gtest/gtest.h>

#include <map>

#include "collect/collectors.hpp"
#include "collect/registry.hpp"
#include "simhw/node.hpp"

namespace tacc::collect {
namespace {

simhw::Node make_node(simhw::Microarch uarch = simhw::Microarch::Haswell,
                      bool ht = false) {
  simhw::NodeConfig nc;
  nc.hostname = "c410-001";
  nc.uarch = uarch;
  nc.topology = simhw::Topology{2, 2, ht};  // 4 physical cores
  nc.has_phi = true;
  return simhw::Node(nc);
}

std::map<std::string, RawBlock> by_device(const std::vector<RawBlock>& v) {
  std::map<std::string, RawBlock> out;
  for (const auto& b : v) out[b.device] = b;
  return out;
}

TEST(CpuCollector, ReadsPerCpuJiffies) {
  auto node = make_node();
  node.state().cores[1].user = 111;
  node.state().cores[1].iowait = 7;
  CpuCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 4u);  // one block per logical cpu, aggregate skipped
  const auto blocks = by_device(out);
  EXPECT_EQ(blocks.at("1").values[0], 111u);  // user
  EXPECT_EQ(blocks.at("1").values[4], 7u);    // iowait
  EXPECT_EQ(blocks.at("0").values[0], 0u);
}

TEST(PmcCollector, ProbeDetectsArchAndBudget) {
  auto node = make_node(simhw::Microarch::SandyBridge, /*ht=*/false);
  auto pmc = PmcCollector::probe(node);
  ASSERT_NE(pmc, nullptr);
  EXPECT_EQ(pmc->schema().type(), "snb");
  // instructions + cycles + 8 programmable events.
  EXPECT_EQ(pmc->schema().size(), 10u);
  EXPECT_TRUE(pmc->schema().index_of("llc_hits").has_value());
  EXPECT_TRUE(pmc->schema().index_of("branches").has_value());
}

TEST(PmcCollector, HyperthreadingShrinksEventSet) {
  auto node = make_node(simhw::Microarch::Haswell, /*ht=*/true);
  auto pmc = PmcCollector::probe(node);
  ASSERT_NE(pmc, nullptr);
  // instructions + cycles + 4 programmable events only.
  EXPECT_EQ(pmc->schema().size(), 6u);
  EXPECT_TRUE(pmc->schema().index_of("fp_scalar").has_value());
  EXPECT_TRUE(pmc->schema().index_of("loads_all").has_value());
  EXPECT_FALSE(pmc->schema().index_of("l2_hits").has_value());
  EXPECT_FALSE(pmc->schema().index_of("llc_hits").has_value());
}

TEST(PmcCollector, CollectsProgrammedTruth) {
  auto node = make_node();
  auto pmc = PmcCollector::probe(node);
  ASSERT_NE(pmc, nullptr);
  pmc->configure(node);
  auto& core = node.state().cores[2];
  core.instructions = 1000;
  core.cycles = 2000;
  core.events[static_cast<std::size_t>(simhw::CoreEvent::FpVector)] = 333;
  std::vector<RawBlock> out;
  pmc->collect(node, out);
  ASSERT_EQ(out.size(), 4u);
  const auto blocks = by_device(out);
  const auto& sch = pmc->schema();
  EXPECT_EQ(blocks.at("2").values[*sch.index_of("instructions")], 1000u);
  EXPECT_EQ(blocks.at("2").values[*sch.index_of("cycles")], 2000u);
  EXPECT_EQ(blocks.at("2").values[*sch.index_of("fp_vector")], 333u);
  EXPECT_EQ(blocks.at("2").values[*sch.index_of("fp_scalar")], 0u);
}

TEST(PmcCollector, UnknownCpuidProbesNull) {
  // No such model in the catalog -> registry falls back gracefully.
  // (Constructed via a Westmere node whose spec we can't fake here, so this
  // exercises the catalog-negative path through arch_from_cpuid instead.)
  EXPECT_EQ(simhw::arch_from_cpuid(6, 1), nullptr);
}

TEST(ImcCollector, ReadsPerSocketAndAppliesWidth) {
  auto node = make_node();
  node.state().sockets[0].imc_cas_reads = 10;
  node.state().sockets[1].imc_cas_writes = (1ULL << 48) + 20;  // masked
  ImcCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].values[0], 10u);
  EXPECT_EQ(out[1].values[1], 20u);
  EXPECT_EQ(c.schema().entry(0).width_bits, 48);
}

TEST(ImcCollector, EmptyOnMsrUncoreArch) {
  auto node = make_node(simhw::Microarch::Nehalem);
  ImcCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  EXPECT_TRUE(out.empty());
}

TEST(RaplCollector, SchemaDeclaresWidthAndScale) {
  RaplCollector c;
  EXPECT_EQ(c.schema().entry(0).width_bits, 32);
  EXPECT_NEAR(c.schema().entry(0).scale, 1.0e6 / 65536.0, 1e-9);
}

TEST(RaplCollector, ReadsRawRegisterUnits) {
  auto node = make_node();
  node.state().sockets[0].energy_pkg_uj = 1000000;  // 1 J
  RaplCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].values[0], 65536u);
  // Scaled back: raw * scale ~= 1e6 uJ.
  EXPECT_NEAR(out[0].values[0] * c.schema().entry(0).scale, 1.0e6, 1.0);
}

TEST(IbCollector, ConvertsWordsToBytesViaScale) {
  auto node = make_node();
  node.state().ib.rx_bytes = 4000;
  IbCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].device, "mlx4_0");
  EXPECT_EQ(out[0].values[0], 1000u);  // raw words
  EXPECT_DOUBLE_EQ(c.schema().entry(0).scale, 4.0);
}

TEST(NetCollector, ParsesEth0) {
  auto node = make_node();
  node.state().eth.rx_bytes = 123;
  node.state().eth.tx_bytes = 456;
  NetCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].device, "eth0");
  EXPECT_EQ(out[0].values[0], 123u);
  EXPECT_EQ(out[0].values[2], 456u);
}

TEST(LliteCollector, ParsesStatsText) {
  auto node = make_node();
  auto& lu = node.state().lustre;
  lu.read_bytes = 1000;
  lu.write_bytes = 2000;
  lu.open = 30;
  lu.close = 29;
  LliteCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values,
            (std::vector<std::uint64_t>{1000, 2000, 30, 29}));
}

TEST(MdcOscCollectors, ParseWaitAndReqs) {
  auto node = make_node();
  auto& lu = node.state().lustre;
  lu.mdc_reqs = 500;
  lu.mdc_wait_us = 75000;
  lu.osc_reqs[1] = 44;
  lu.osc_wait_us[1] = 22000;
  lu.osc_read_bytes[1] = 4096;
  MdcCollector mdc;
  std::vector<RawBlock> out;
  mdc.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values, (std::vector<std::uint64_t>{500, 75000}));
  OscCollector osc;
  out.clear();
  osc.collect(node, out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(
                            simhw::LustreState::kNumOsts));
  EXPECT_EQ(out[1].values[0], 44u);
  EXPECT_EQ(out[1].values[1], 22000u);
  EXPECT_EQ(out[1].values[2], 4096u);
}

TEST(LnetCollector, ParsesColumnPositions) {
  auto node = make_node();
  node.state().lnet.send_count = 9;
  node.state().lnet.recv_bytes = 777;
  LnetCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values[0], 9u);    // tx_msgs
  EXPECT_EQ(out[0].values[3], 777u);  // rx_bytes
}

TEST(MemCollector, ComputesUsed) {
  auto node = make_node();
  node.state().mem.total_kb = 1000000;
  node.state().mem.used_kb = 400000;
  MemCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  const auto& sch = c.schema();
  EXPECT_EQ(out[0].values[*sch.index_of("MemTotal")], 1000000u);
  EXPECT_EQ(out[0].values[*sch.index_of("MemUsed")], 400000u);
  EXPECT_FALSE(sch.entry(0).cumulative);  // gauges
}

TEST(PsCollector, OneBlockPerProcess) {
  auto node = make_node();
  simhw::ProcessInfo p;
  p.pid = 9001;
  p.name = "python";
  p.uid = 555;
  p.vm_hwm_kb = 111;
  p.threads = 3;
  p.cpus_allowed = 0x3;
  node.spawn_process(p);
  p.pid = 9002;
  node.spawn_process(p);
  PsCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].device, "9001:python");
  const auto& sch = c.schema();
  EXPECT_EQ(out[0].values[*sch.index_of("uid")], 555u);
  EXPECT_EQ(out[0].values[*sch.index_of("vm_hwm")], 111u);
  EXPECT_EQ(out[0].values[*sch.index_of("threads")], 3u);
  EXPECT_EQ(out[0].values[*sch.index_of("cpus_allowed")], 3u);
}

TEST(MicCollector, ReadsHostSideStats) {
  auto node = make_node();
  node.state().mic.user_jiffies = 100;
  node.state().mic.sys_jiffies = 10;
  node.state().mic.idle_jiffies = 890;
  MicCollector c;
  std::vector<RawBlock> out;
  c.collect(node, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].device, "mic0");
  EXPECT_EQ(out[0].values, (std::vector<std::uint64_t>{100, 10, 890}));
}

TEST(Registry, FullSetWithAllOptions) {
  auto node = make_node();
  const auto collectors = make_collectors(node);
  std::vector<std::string> types;
  for (const auto& c : collectors) types.push_back(c->schema().type());
  auto has = [&](const char* t) {
    return std::find(types.begin(), types.end(), t) != types.end();
  };
  EXPECT_TRUE(has("cpu"));
  EXPECT_TRUE(has("hsw"));
  EXPECT_TRUE(has("imc"));
  EXPECT_TRUE(has("qpi"));
  EXPECT_TRUE(has("rapl"));
  EXPECT_TRUE(has("mem"));
  EXPECT_TRUE(has("ps"));
  EXPECT_TRUE(has("ib"));
  EXPECT_TRUE(has("mic"));
  EXPECT_TRUE(has("llite"));
  EXPECT_TRUE(has("mdc"));
  EXPECT_TRUE(has("osc"));
  EXPECT_TRUE(has("lnet"));
  EXPECT_TRUE(has("net"));
}

TEST(Registry, BuildOptionsPruneOptionalCollectors) {
  auto node = make_node();
  BuildOptions opts;
  opts.with_ib = false;
  opts.with_phi = false;
  opts.with_lustre = false;
  const auto collectors = make_collectors(node, opts);
  for (const auto& c : collectors) {
    const auto t = c->schema().type();
    EXPECT_NE(t, "ib");
    EXPECT_NE(t, "mic");
    EXPECT_NE(t, "llite");
    EXPECT_NE(t, "lnet");
  }
}

TEST(HostSampler, SampleCarriesJobsAndMark) {
  auto node = make_node();
  HostSampler sampler(node);
  const auto rec =
      sampler.sample(1451606400 * util::kSecond, {42, 43}, "begin");
  EXPECT_EQ(rec.time, 1451606400 * util::kSecond);
  EXPECT_EQ(rec.jobids, (std::vector<long>{42, 43}));
  EXPECT_EQ(rec.mark, "begin");
  EXPECT_FALSE(rec.blocks.empty());
}

TEST(HostSampler, SerializedSampleParsesAgainstOwnHeader) {
  auto node = make_node();
  HostSampler sampler(node);
  auto log = sampler.make_log();
  log.records.push_back(sampler.sample(1451606400 * util::kSecond, {}, ""));
  const auto parsed = HostLog::parse(log.serialize());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].blocks.size(), log.records[0].blocks.size());
}

TEST(HostSampler, FailedNodeThrows) {
  auto node = make_node();
  HostSampler sampler(node);
  node.set_failed(true);
  EXPECT_THROW(sampler.sample(0, {}, ""), simhw::NodeFailedError);
}

}  // namespace
}  // namespace tacc::collect
