// Time-series store: tag filtering, group-by, aggregation, downsampling.
#include <gtest/gtest.h>

#include "tsdb/store.hpp"

namespace tacc::tsdb {
namespace {

constexpr util::SimTime kT0 = 1451606400LL * util::kSecond;

Store sample_store() {
  Store s;
  // Two hosts, one metric, mdc request counts every minute.
  for (int i = 0; i < 10; ++i) {
    s.put("lustre.mdc.reqs", {{"host", "c400-001"}, {"user", "alice"}},
          kT0 + i * util::kMinute, 100.0 + i);
    s.put("lustre.mdc.reqs", {{"host", "c400-002"}, {"user", "bob"}},
          kT0 + i * util::kMinute, 10.0);
  }
  return s;
}

TEST(Tsdb, AggregateFunctions) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(aggregate(Aggregator::Sum, xs), 10.0);
  EXPECT_DOUBLE_EQ(aggregate(Aggregator::Avg, xs), 2.5);
  EXPECT_DOUBLE_EQ(aggregate(Aggregator::Min, xs), 1.0);
  EXPECT_DOUBLE_EQ(aggregate(Aggregator::Max, xs), 4.0);
  EXPECT_DOUBLE_EQ(aggregate(Aggregator::Count, xs), 4.0);
  EXPECT_DOUBLE_EQ(aggregate(Aggregator::Sum, {}), 0.0);
  EXPECT_DOUBLE_EQ(aggregate(Aggregator::Count, {}), 0.0);
}

TEST(Tsdb, CountsSeriesAndPoints) {
  const auto s = sample_store();
  EXPECT_EQ(s.num_series(), 2u);
  EXPECT_EQ(s.num_points(), 20u);
}

TEST(Tsdb, UnknownMetricIsEmpty) {
  const auto s = sample_store();
  Query q;
  q.metric = "nope";
  EXPECT_TRUE(s.query(q).empty());
}

TEST(Tsdb, AggregatesAcrossSeriesPerTimestamp) {
  const auto s = sample_store();
  Query q;
  q.metric = "lustre.mdc.reqs";
  q.aggregator = Aggregator::Sum;
  const auto results = s.query(q);
  ASSERT_EQ(results.size(), 1u);  // no group_by: one merged group
  ASSERT_EQ(results[0].points.size(), 10u);
  EXPECT_DOUBLE_EQ(results[0].points[0].value, 110.0);  // 100 + 10
  EXPECT_DOUBLE_EQ(results[0].points[9].value, 119.0);
}

TEST(Tsdb, TagFilterSelectsSeries) {
  const auto s = sample_store();
  Query q;
  q.metric = "lustre.mdc.reqs";
  q.filters = {{"user", "alice"}};
  const auto results = s.query(q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].points[0].value, 100.0);
  q.filters = {{"user", "nobody"}};
  EXPECT_TRUE(s.query(q).empty());
  q.filters = {{"missing_tag", "x"}};
  EXPECT_TRUE(s.query(q).empty());
}

TEST(Tsdb, GroupByProducesSeparateGroups) {
  const auto s = sample_store();
  Query q;
  q.metric = "lustre.mdc.reqs";
  q.group_by = {"host"};
  const auto results = s.query(q);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].group_tags.at("host"), "c400-001");
  EXPECT_EQ(results[1].group_tags.at("host"), "c400-002");
}

TEST(Tsdb, DownsampleBucketsAndAggregates) {
  Store s;
  for (int i = 0; i < 10; ++i) {
    s.put("m", {{"host", "h"}}, kT0 + i * util::kMinute,
          static_cast<double>(i));
  }
  Query q;
  q.metric = "m";
  q.downsample = 5 * util::kMinute;
  q.downsample_aggregator = Aggregator::Avg;
  const auto results = s.query(q);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(results[0].points[0].value, 2.0);  // avg(0..4)
  EXPECT_DOUBLE_EQ(results[0].points[1].value, 7.0);  // avg(5..9)
}

TEST(Tsdb, DownsampleMaxFindsPeaks) {
  Store s;
  s.put("m", {}, kT0, 1.0);
  s.put("m", {}, kT0 + util::kSecond, 9.0);
  s.put("m", {}, kT0 + 2 * util::kSecond, 2.0);
  Query q;
  q.metric = "m";
  q.downsample = util::kMinute;
  q.downsample_aggregator = Aggregator::Max;
  const auto results = s.query(q);
  ASSERT_EQ(results[0].points.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].points[0].value, 9.0);
}

TEST(Tsdb, TimeRangeFilters) {
  const auto s = sample_store();
  Query q;
  q.metric = "lustre.mdc.reqs";
  q.start = kT0 + 2 * util::kMinute;
  q.end = kT0 + 5 * util::kMinute;  // exclusive
  const auto results = s.query(q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].points.size(), 3u);
}

TEST(Tsdb, OutOfOrderWritesSortOnQuery) {
  Store s;
  s.put("m", {}, kT0 + 2 * util::kMinute, 3.0);
  s.put("m", {}, kT0, 1.0);
  s.put("m", {}, kT0 + util::kMinute, 2.0);
  Query q;
  q.metric = "m";
  const auto results = s.query(q);
  ASSERT_EQ(results[0].points.size(), 3u);
  EXPECT_LT(results[0].points[0].time, results[0].points[1].time);
  EXPECT_LT(results[0].points[1].time, results[0].points[2].time);
  EXPECT_DOUBLE_EQ(results[0].points[0].value, 1.0);
}

TEST(Tsdb, PaperStyleTagTuple) {
  // The paper's tag tuple: host, device type, device name, event name.
  Store s;
  s.put("taccstats", {{"host", "c401-101"},
                      {"type", "mdc"},
                      {"device", "work-MDT0000"},
                      {"event", "reqs"}},
        kT0, 563905.0);
  Query q;
  q.metric = "taccstats";
  q.filters = {{"type", "mdc"}, {"event", "reqs"}};
  q.group_by = {"host"};
  const auto results = s.query(q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].group_tags.at("host"), "c401-101");
  EXPECT_DOUBLE_EQ(results[0].points[0].value, 563905.0);
}

}  // namespace
}  // namespace tacc::tsdb
