// Transport-equivalence property: the daemon and cron modes deliver the
// SAME records (the demand engine is deterministic and time-indexed), just
// at different times and with different loss behavior — so job metrics
// computed from either archive must agree exactly. Also: spooling an
// archive to disk and re-ingesting it must be metric-preserving.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/monitor.hpp"
#include "pipeline/ingest.hpp"
#include "portal/views.hpp"
#include "transport/spool.hpp"
#include "xalt/xalt.hpp"

namespace tacc {
namespace {

constexpr util::SimTime kStart = 1451865600LL * util::kSecond;

workload::JobSpec test_job() {
  workload::JobSpec job;
  job.jobid = 31337;
  job.user = "eve";
  job.uid = 10009;
  job.profile = "genomics_io";
  job.exe = "blastn";
  job.nodes = 2;
  job.wayness = 8;
  job.submit_time = kStart;
  job.start_time = kStart;
  job.end_time = kStart + 3 * util::kHour;
  return job;
}

/// Runs the same workload timeline under a transport mode and returns the
/// job's metrics computed from the central archive.
pipeline::JobMetrics run_mode(core::TransportMode mode,
                              transport::RawArchive** archive_out = nullptr,
                              core::ClusterMonitor** monitor_out = nullptr) {
  static std::vector<std::unique_ptr<simhw::Cluster>> clusters;
  static std::vector<std::unique_ptr<core::ClusterMonitor>> monitors;
  simhw::ClusterConfig cc;
  cc.num_nodes = 2;
  cc.topology = simhw::Topology{2, 4, false};
  cc.phi_fraction = 0.0;
  clusters.push_back(std::make_unique<simhw::Cluster>(cc));
  core::MonitorConfig mc;
  mc.mode = mode;
  mc.start = kStart;
  mc.online_analysis = false;
  monitors.push_back(
      std::make_unique<core::ClusterMonitor>(*clusters.back(), mc));
  auto& monitor = *monitors.back();

  const auto job = test_job();
  monitor.job_started(job, {0, 1});
  monitor.advance_to(job.end_time);
  monitor.job_ended(job.jobid);
  // Cron mode: run to the next staging window so everything lands.
  monitor.advance_to(kStart + util::kDay + 6 * util::kHour);
  monitor.drain();
  if (archive_out != nullptr) *archive_out = &monitor.archive();
  if (monitor_out != nullptr) *monitor_out = &monitor;

  const auto data = pipeline::extract_job(
      monitor.archive(),
      workload::to_accounting(job, {"c400-001", "c400-002"}));
  return compute_metrics(data);
}

void expect_same(const pipeline::JobMetrics& a,
                 const pipeline::JobMetrics& b) {
  const auto ma = a.as_map();
  const auto mb = b.as_map();
  for (const auto& label : pipeline::JobMetrics::labels()) {
    const double va = ma.at(label);
    const double vb = mb.at(label);
    if (std::isnan(va)) {
      EXPECT_TRUE(std::isnan(vb)) << label;
    } else {
      EXPECT_NEAR(va, vb, std::abs(va) * 1e-12 + 1e-12) << label;
    }
  }
}

TEST(TransportEquivalence, DaemonAndCronYieldIdenticalMetrics) {
  const auto daemon = run_mode(core::TransportMode::Daemon);
  const auto cron = run_mode(core::TransportMode::Cron);
  ASSERT_FALSE(std::isnan(daemon.CPU_Usage));
  ASSERT_FALSE(std::isnan(cron.CPU_Usage));
  expect_same(daemon, cron);
}

TEST(TransportEquivalence, SpoolRoundTripPreservesMetrics) {
  transport::RawArchive* archive = nullptr;
  const auto direct = run_mode(core::TransportMode::Daemon, &archive);
  ASSERT_NE(archive, nullptr);

  const auto root = std::filesystem::temp_directory_path() /
                    "ts_equiv_spool";
  std::filesystem::remove_all(root);
  transport::Spool spool(root);
  spool.write_archive(*archive);

  transport::RawArchive reloaded;
  for (const auto& day : spool.days()) spool.load_day(day, reloaded);
  EXPECT_EQ(reloaded.total_records(), archive->total_records());

  const auto data = pipeline::extract_job(
      reloaded,
      workload::to_accounting(test_job(), {"c400-001", "c400-002"}));
  expect_same(direct, compute_metrics(data));
  std::filesystem::remove_all(root);
}

TEST(TransportEquivalence, DetailViewWithXaltEnvironment) {
  transport::RawArchive* archive = nullptr;
  (void)run_mode(core::TransportMode::Daemon, &archive);
  db::Database database;
  pipeline::ingest_from_archive(
      database, *archive,
      {workload::to_accounting(test_job(), {"c400-001", "c400-002"})});
  auto& xalt_table = xalt::create_xalt_table(database);
  xalt::ingest_record(xalt_table, xalt::synthesize_record(test_job()));

  const auto& jobs = database.table(pipeline::kJobsTable);
  const auto rows = jobs.select({});
  ASSERT_EQ(rows.size(), 1u);
  const auto view = portal::job_detail_view(jobs, rows[0], &xalt_table);
  EXPECT_NE(view.find("Environment (XALT):"), std::string::npos);
  EXPECT_NE(view.find("Modules:"), std::string::npos);
  EXPECT_NE(view.find("blast"), std::string::npos);

  // Without a record the section degrades gracefully.
  db::Database other;
  auto& empty_xalt = xalt::create_xalt_table(other);
  const auto view2 = portal::job_detail_view(jobs, rows[0], &empty_xalt);
  EXPECT_NE(view2.find("no record for this job"), std::string::npos);
}

}  // namespace
}  // namespace tacc
