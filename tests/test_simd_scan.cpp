// SimdScanner: delimiter semantics against the legacy split helpers, and
// the cross-kernel property the pipeline's determinism rests on — every
// scan mode emits byte-identical line/token spans.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/simd_scan.hpp"
#include "util/strings.hpp"

namespace tacc::util {
namespace {

std::vector<ScanMode> testable_modes() {
  std::vector<ScanMode> modes = {ScanMode::Scalar};
  if (resolve_scan_mode(ScanMode::Sse2) == ScanMode::Sse2) {
    modes.push_back(ScanMode::Sse2);
  }
  if (resolve_scan_mode(ScanMode::Avx2) == ScanMode::Avx2) {
    modes.push_back(ScanMode::Avx2);
  }
  return modes;
}

/// (line_begin, line_end, tokens...) per line — the full observable
/// output of one scan.
struct ScanTrace {
  std::vector<std::size_t> line_begins;
  std::vector<std::size_t> line_ends;
  std::vector<std::vector<std::string>> tokens;

  bool operator==(const ScanTrace&) const = default;
};

ScanTrace scan_all(std::string_view text, ScanMode mode) {
  ScanTrace trace;
  SimdScanner scanner(text, mode);
  std::vector<std::string_view> fields;
  while (scanner.next_line(fields)) {
    trace.line_begins.push_back(scanner.line_begin());
    trace.line_ends.push_back(scanner.line_end());
    trace.tokens.emplace_back(fields.begin(), fields.end());
  }
  return trace;
}

/// The legacy reference: split_lines + split_ws.
ScanTrace reference_scan(std::string_view text) {
  ScanTrace trace;
  for (const auto line : split_lines(text)) {
    trace.line_begins.push_back(
        static_cast<std::size_t>(line.data() - text.data()));
    trace.line_ends.push_back(trace.line_begins.back() + line.size());
    const auto fields = split_ws(line);
    trace.tokens.emplace_back(fields.begin(), fields.end());
  }
  return trace;
}

TEST(SimdScan, DetectedModeIsSupported) {
  const ScanMode m = detected_scan_mode();
  EXPECT_NE(m, ScanMode::Auto);
  EXPECT_EQ(resolve_scan_mode(ScanMode::Auto), m);
  // Forcing the detected mode is a no-op; forcing above it clamps.
  EXPECT_EQ(resolve_scan_mode(m), m);
}

TEST(SimdScan, BasicTokens) {
  for (const ScanMode mode : testable_modes()) {
    SCOPED_TRACE(std::string(scan_mode_name(mode)));
    const auto trace = scan_all("cpu 0 818 0\nmem - 123\n", mode);
    ASSERT_EQ(trace.tokens.size(), 2u);
    EXPECT_EQ(trace.tokens[0],
              (std::vector<std::string>{"cpu", "0", "818", "0"}));
    EXPECT_EQ(trace.tokens[1], (std::vector<std::string>{"mem", "-", "123"}));
    EXPECT_EQ(trace.line_begins[1], 12u);
    EXPECT_EQ(trace.line_ends[1], 21u);
  }
}

TEST(SimdScan, EdgeCases) {
  const std::vector<std::string> cases = {
      "",                       // empty input: no lines
      "\n",                     // one empty line
      "\n\n\n",                 // runs of newlines
      "a",                      // unterminated single token
      "a\n",                    // terminated single token
      " \t ",                   // whitespace-only unterminated line
      " \t \n",                 // whitespace-only terminated line
      "  leading\n",            // leading whitespace
      "trailing  \n",           // trailing whitespace
      "a  b\tc\n",              // mixed delimiters
      "\r\n",                   // '\r' is token content, not a delimiter
      "a\rb c\n",
      std::string(200, 'x'),    // token longer than one 64-byte window
      std::string(63, 'x') + "\n" + std::string(64, 'y') + "\n",
      std::string(64, ' ') + "z",  // window of pure whitespace
  };
  for (const auto& text : cases) {
    const auto expected = reference_scan(text);
    for (const ScanMode mode : testable_modes()) {
      SCOPED_TRACE(std::string(scan_mode_name(mode)) + " on " + text);
      EXPECT_EQ(scan_all(text, mode), expected);
    }
  }
}

TEST(SimdScan, ClassifyKernelsAgree) {
  // Every kernel must produce identical masks on every byte value at
  // every lane position.
  char block[64];
  auto* scalar = scan_classify_fn(ScanMode::Scalar);
  for (const ScanMode mode : testable_modes()) {
    auto* fn = scan_classify_fn(mode);
    if (fn == scalar) continue;
    Rng rng(7);
    for (int iter = 0; iter < 2000; ++iter) {
      for (char& c : block) {
        // Bias towards delimiters so both mask words get exercised.
        const auto roll = rng.uniform_int(0, 9);
        if (roll < 2) {
          c = ' ';
        } else if (roll == 2) {
          c = '\t';
        } else if (roll == 3) {
          c = '\n';
        } else {
          c = static_cast<char>(rng.uniform_int(0, 255));
        }
      }
      ScanMasks want;
      ScanMasks got;
      scalar(block, want);
      fn(block, got);
      ASSERT_EQ(want.ws, got.ws) << scan_mode_name(mode) << " iter " << iter;
      ASSERT_EQ(want.nl, got.nl) << scan_mode_name(mode) << " iter " << iter;
    }
  }
}

TEST(SimdScan, PropertyIdenticalAcrossModesOnRandomInputs) {
  // Seeded random inputs stressing the scanner's state machine: embedded
  // '\n' runs, trailing bytes, empty lines, tokens straddling 64-byte
  // windows.
  Rng rng(42);
  const auto modes = testable_modes();
  for (int iter = 0; iter < 300; ++iter) {
    std::string text;
    const int pieces = rng.uniform_int(0, 40);
    for (int p = 0; p < pieces; ++p) {
      switch (rng.uniform_int(0, 5)) {
        case 0:
          text.append(static_cast<std::size_t>(rng.uniform_int(1, 9)), '\n');
          break;
        case 1:
          text.append(static_cast<std::size_t>(rng.uniform_int(1, 5)),
                      rng.uniform_int(0, 1) ? ' ' : '\t');
          break;
        case 2: {  // short token
          const int len = rng.uniform_int(1, 6);
          for (int i = 0; i < len; ++i) {
            text += static_cast<char>('a' + rng.uniform_int(0, 25));
          }
          break;
        }
        case 3: {  // token wider than a scan window
          text.append(static_cast<std::size_t>(rng.uniform_int(65, 200)),
                      'Q');
          break;
        }
        case 4: {  // digits (record-line shaped)
          const int len = rng.uniform_int(1, 12);
          for (int i = 0; i < len; ++i) {
            text += static_cast<char>('0' + rng.uniform_int(0, 9));
          }
          break;
        }
        default:  // arbitrary non-delimiter noise, including '\r' and NUL
          text += static_cast<char>(rng.uniform_int(0, 255));
          break;
      }
    }
    const auto expected = reference_scan(text);
    for (const ScanMode mode : modes) {
      ASSERT_EQ(scan_all(text, mode), expected)
          << "mode " << scan_mode_name(mode) << " iter " << iter;
    }
  }
}

TEST(SimdScan, ScratchVectorIsReusedWithoutAllocating) {
  // Steady-state contract: once `fields` has grown, further lines of the
  // same or smaller width never reallocate it.
  const std::string text = "aa bb cc dd\nee ff gg hh\nii jj kk ll\n";
  SimdScanner scanner(text);
  std::vector<std::string_view> fields;
  ASSERT_TRUE(scanner.next_line(fields));
  const auto cap = fields.capacity();
  const auto* data = fields.data();
  while (scanner.next_line(fields)) {
    EXPECT_EQ(fields.capacity(), cap);
    EXPECT_EQ(fields.data(), data);
  }
}

}  // namespace
}  // namespace tacc::util
