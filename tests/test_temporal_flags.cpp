// Directional temporal diagnosis (paper section V-A): "Sudden performance
// increases suggest a job that consists of a compilation step before it
// runs, while sudden drops indicate application failure." End-to-end: the
// compile-first and fail-mid-run app profiles must produce the matching
// RampUp/TailDrop metrics and flags through the full stack.
#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/ingest.hpp"
#include "pipeline/minisim.hpp"
#include "workload/apps.hpp"

namespace tacc::pipeline {
namespace {

workload::JobSpec base_job(const char* profile) {
  workload::JobSpec job;
  job.jobid = 600;
  job.user = "u";
  job.profile = profile;
  job.exe = workload::find_profile(profile).exe;
  job.nodes = 2;
  job.wayness = 8;
  job.start_time = util::make_time(2015, 11, 20);
  job.end_time = job.start_time + 4 * util::kHour;
  return job;
}

JobMetrics run(const workload::JobSpec& job) {
  MiniSimOptions opts;
  opts.samples = 11;
  return compute_metrics(simulate_job(job, opts));
}

bool has_flag(const std::vector<Flag>& flags, const std::string& name) {
  for (const auto& f : flags) {
    if (f.name == name) return true;
  }
  return false;
}

TEST(TemporalFlags, CompileJobShowsRampUpNotTailDrop) {
  const auto job = base_job("compile_run");
  const auto m = run(job);
  ASSERT_FALSE(std::isnan(m.RampUp));
  // The compile phase keeps the CPU busy but produces no FLOPs, so the
  // FLOP-based ramp catches it: the paper's "sudden performance increase".
  EXPECT_LT(m.RampUp, 0.3);
  EXPECT_GT(m.TailDrop, 0.8);
  const auto flags = evaluate_flags(workload::to_accounting(job, {}), m);
  EXPECT_TRUE(has_flag(flags, "cpu_ramp_up"));
  EXPECT_FALSE(has_flag(flags, "cpu_tail_drop"));
}

TEST(TemporalFlags, FailedJobShowsTailDrop) {
  auto job = base_job("flaky_solver");
  job.status = "FAILED";
  job.fail_at_frac = 0.5;
  const auto m = run(job);
  ASSERT_FALSE(std::isnan(m.TailDrop));
  EXPECT_LT(m.TailDrop, 0.1);   // dead at the end
  EXPECT_GT(m.RampUp, 0.8);     // started healthy
  EXPECT_LT(m.catastrophe, 0.25);
  const auto flags =
      evaluate_flags(workload::to_accounting(job, {}), m);
  EXPECT_TRUE(has_flag(flags, "cpu_tail_drop"));
  EXPECT_FALSE(has_flag(flags, "cpu_ramp_up"));
  EXPECT_TRUE(has_flag(flags, "cpu_time_variation"));
}

TEST(TemporalFlags, HealthyJobShowsNeither) {
  const auto m = run(base_job("md_engine"));
  EXPECT_GT(m.RampUp, 0.8);
  EXPECT_GT(m.TailDrop, 0.8);
  const auto flags = evaluate_flags(
      workload::to_accounting(base_job("md_engine"), {}), m);
  EXPECT_FALSE(has_flag(flags, "cpu_ramp_up"));
  EXPECT_FALSE(has_flag(flags, "cpu_tail_drop"));
}

TEST(TemporalFlags, CraftedRampUpFiresDirectionally) {
  // Metrics crafted directly: slow first window, healthy tail.
  JobMetrics m;
  m.RampUp = 0.1;
  m.TailDrop = 0.95;
  m.catastrophe = 0.1;
  workload::AccountingRecord acct;
  acct.queue = "normal";
  const auto flags = evaluate_flags(acct, m);
  EXPECT_TRUE(has_flag(flags, "cpu_ramp_up"));
  EXPECT_FALSE(has_flag(flags, "cpu_tail_drop"));
  // And the mirror image.
  m.RampUp = 0.95;
  m.TailDrop = 0.1;
  const auto flags2 = evaluate_flags(acct, m);
  EXPECT_FALSE(has_flag(flags2, "cpu_ramp_up"));
  EXPECT_TRUE(has_flag(flags2, "cpu_tail_drop"));
}

TEST(TemporalFlags, BothLowMeansDropDominates) {
  // A job that only worked in the middle: the ramp flag stays quiet (we
  // can't distinguish compile from failure when the tail also died), the
  // drop flag fires.
  JobMetrics m;
  m.RampUp = 0.1;
  m.TailDrop = 0.1;
  workload::AccountingRecord acct;
  const auto flags = evaluate_flags(acct, m);
  EXPECT_FALSE(has_flag(flags, "cpu_ramp_up"));
  EXPECT_TRUE(has_flag(flags, "cpu_tail_drop"));
}

TEST(TemporalFlags, MetricsInDatabaseColumns) {
  db::Database database;
  auto& jobs = create_jobs_table(database);
  auto job = base_job("flaky_solver");
  job.fail_at_frac = 0.4;
  const auto m = run(job);
  ingest_job(jobs, workload::to_accounting(job, {}), m,
             evaluate_flags(workload::to_accounting(job, {}), m));
  EXPECT_FALSE(jobs.at(0, "RampUp").is_null());
  EXPECT_FALSE(jobs.at(0, "TailDrop").is_null());
  // The portal can search for failures directly.
  EXPECT_EQ(jobs.select({{"TailDrop", db::Op::Lt, db::Value(0.3)}}).size(),
            1u);
}

}  // namespace
}  // namespace tacc::pipeline
