// Quickstart: monitor a small cluster end to end.
//
// Builds a 4-node simulated cluster, runs one WRF-like job under the
// daemon-mode monitor (10-minute sampling, RabbitMQ-style transport,
// real-time consumer), then maps the raw records to the job, computes the
// Table I metrics, evaluates the flag rules, and prints the job detail
// view.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/monitor.hpp"
#include "db/table.hpp"
#include "pipeline/ingest.hpp"
#include "portal/views.hpp"
#include "workload/generator.hpp"

using namespace tacc;

int main() {
  // 1. A 4-node Haswell cluster with Lustre, InfiniBand and Xeon Phi.
  simhw::ClusterConfig cc;
  cc.num_nodes = 4;
  simhw::Cluster cluster(cc);

  // 2. Attach the monitor in daemon (real-time) mode.
  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = util::make_time(2016, 1, 4, 8, 0, 0);
  core::ClusterMonitor monitor(cluster, mc);

  // 3. Describe and start a job (normally the batch scheduler does this).
  workload::JobSpec job;
  job.jobid = 4242001;
  job.user = "jdoe";
  job.uid = 10123;
  job.profile = "wrf";
  job.exe = "wrf.exe";
  job.jobname = "conus12km";
  job.nodes = 4;
  job.wayness = 16;
  job.submit_time = mc.start - 20 * util::kMinute;
  job.start_time = mc.start;
  job.end_time = mc.start + 2 * util::kHour;
  monitor.job_started(job, {0, 1, 2, 3});

  // 4. Run two simulated hours; tacc_statsd samples every 10 minutes and
  //    ships records through the broker as they are taken.
  monitor.advance_to(job.end_time);
  monitor.job_ended(job.jobid);
  monitor.drain();

  std::printf("collections: %llu, records archived: %zu\n",
              static_cast<unsigned long long>(
                  monitor.daemon_stats().collections),
              monitor.archive().total_records());

  // 5. Analysis: extract the job, compute metrics, ingest, render.
  db::Database database;
  const std::size_t n = pipeline::ingest_from_archive(
      database, monitor.archive(),
      {workload::to_accounting(job, monitor.archive().hosts())});
  std::printf("jobs ingested: %zu\n\n", n);

  const auto& jobs = database.table(pipeline::kJobsTable);
  const auto rows = jobs.select({});
  std::fputs(portal::job_detail_view(jobs, rows.front()).c_str(), stdout);
  return 0;
}
