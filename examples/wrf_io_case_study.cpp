// The section V-B Lustre I/O case study as a runnable walkthrough.
//
// A consultant's session: a portal search over WRF jobs shows metadata-rate
// outliers (Fig. 4); drilling into one outlier job shows the Fig. 5 panels
// (huge MDS request rate, negligible Lustre bandwidth, depressed CPU user
// fraction); ORM-style aggregation then compares the offending user's
// cohort against the whole WRF population.
//
//   ./examples/wrf_io_case_study [num_jobs]
#include <cstdio>
#include <cstdlib>

#include "pipeline/ingest.hpp"
#include "pipeline/minisim.hpp"
#include "portal/plots.hpp"
#include "portal/search.hpp"
#include "portal/views.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"
#include "xalt/xalt.hpp"

using namespace tacc;

int main(int argc, char** argv) {
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 1500;

  // Build the quarter's population (scaled) and run every job through the
  // monitoring + analysis pipeline.
  workload::PopulationConfig config;
  config.num_jobs = num_jobs;
  config.storm_jobs = 60;
  auto jobs = workload::generate_population(config);
  db::Database database;
  pipeline::MiniSimOptions opts;
  opts.samples = 3;
  std::printf("simulating %zu jobs through the full pipeline...\n",
              jobs.size());
  ingest_population(database, jobs, opts);
  auto& table = database.table(pipeline::kJobsTable);
  // The XALT plugin captured every job's environment.
  auto& xalt_table = xalt::create_xalt_table(database);
  for (const auto& spec : jobs) {
    xalt::ingest_record(xalt_table, xalt::synthesize_record(spec));
  }

  // Step 1: the portal search over WRF jobs.
  portal::PortalQuery q;
  q.exe = "wrf.exe";
  q.min_runtime_s = 600.0;
  const auto wrf_rows = portal::run_query(table, q);
  std::printf("\n-- portal search: exe=wrf.exe, runtime>10m --\n");
  std::fputs(portal::job_list_view(table, wrf_rows, 8).c_str(), stdout);
  std::fputs(portal::query_histograms(table, wrf_rows, 10).c_str(), stdout);

  // Step 2: who owns the outliers?
  portal::PortalQuery outlierq = q;
  outlierq.search_fields = {"MetaDataRate__gte=100000"};
  const auto outliers = portal::run_query(table, outlierq);
  std::printf("-- outliers (MetaDataRate >= 100k/s): %zu jobs --\n",
              outliers.size());
  std::fputs(portal::flagged_sublist(table, outliers, 5).c_str(), stdout);

  // Step 3: detailed view of one outlier, with the Fig. 5 panels
  // regenerated from a fresh collection of that job.
  if (!outliers.empty()) {
    const auto row = outliers.front();
    std::fputs(portal::job_detail_view(table, row, &xalt_table).c_str(),
               stdout);
    for (const auto& spec : jobs) {
      if (spec.jobid == table.at(row, "jobid").as_int()) {
        pipeline::MiniSimOptions detail;
        detail.samples = 11;
        const auto data = simulate_job(spec, detail);
        std::printf("\n-- per-node time series (Fig. 5 panels) --\n");
        std::fputs(
            portal::render_job_plots(pipeline::job_timeseries(data)).c_str(),
            stdout);
        break;
      }
    }
  }

  // Step 4: cohort aggregation (the Django-ORM step of the paper).
  const auto storm =
      table.select({{"user", db::Op::Eq, db::Value("wrfuser42")}});
  std::vector<db::RowId> rest;
  for (const auto id : wrf_rows) {
    if (table.at(id, "user").as_text() != "wrfuser42") rest.push_back(id);
  }
  util::TextTable cohort;
  cohort.header({"Cohort", "Jobs", "CPU_Usage", "MetaDataRate",
                 "LLiteOpenClose"});
  auto rowfor = [&](const char* name, const std::vector<db::RowId>& rows) {
    cohort.row({name, std::to_string(rows.size()),
                util::TextTable::num(
                    table.aggregate(db::Agg::Avg, "CPU_Usage", rows), 3),
                util::TextTable::num(
                    table.aggregate(db::Agg::Avg, "MetaDataRate", rows), 6),
                util::TextTable::num(
                    table.aggregate(db::Agg::Avg, "LLiteOpenClose", rows),
                    5)});
  };
  rowfor("storm user", storm);
  rowfor("WRF population", rest);
  std::printf("\n-- cohort comparison (ORM aggregation) --\n");
  std::fputs(cohort.render().c_str(), stdout);
  std::printf(
      "\nDiagnosis (as in the paper): the user's input loop opens and closes\n"
      "a file every iteration to read one parameter; the metadata requests\n"
      "load the MDS and cost the job ~13 points of CPU utilization.\n");
  return 0;
}
