// Online (soft real-time) monitoring and automated response, paper
// section VI-B.
//
// Runs the daemon-mode monitor under a live FCFS scheduler while a
// metadata-storm job and a misconfigured Ethernet-MPI job run alongside
// healthy work. The online analyzer, fed by the broker consumer as records
// arrive, raises administrator alerts; the auto-responder applies a
// three-strike policy and suspends the storm before it can melt the
// filesystem — freeing its nodes for the queued healthy job.
//
//   ./examples/online_alerts
#include <cstdio>

#include "core/autoresponder.hpp"
#include "workload/generator.hpp"

using namespace tacc;

int main() {
  simhw::ClusterConfig cc;
  cc.num_nodes = 12;
  cc.topology = simhw::Topology{2, 8, false};
  cc.phi_fraction = 0.0;
  simhw::Cluster cluster(cc);

  core::MonitorConfig mc;
  mc.mode = core::TransportMode::Daemon;
  mc.start = util::make_time(2016, 1, 11, 9, 0);
  mc.online_thresholds.mdc_reqs_ps = 20000.0;
  core::ClusterMonitor monitor(cluster, mc);
  core::LiveScheduler scheduler(monitor, cluster.size());
  core::AutoResponder responder(
      *monitor.online(), scheduler, core::ResponderConfig{/*strikes=*/3},
      [](const core::ResponderAction& action) {
        std::printf(">>> ADMIN NOTICE %s: job %ld suspended (%s, %d "
                    "strikes)\n",
                    util::format_time(action.time).c_str(), action.jobid,
                    action.rule.c_str(), action.strikes);
      });

  auto submit = [&](long id, const char* user, const char* profile,
                    int nodes, util::SimTime submit_at,
                    util::SimTime duration) {
    workload::JobSpec job;
    job.jobid = id;
    job.user = user;
    job.profile = profile;
    job.exe = workload::find_profile(profile).exe;
    job.nodes = nodes;
    job.wayness = 16;
    job.submit_time = submit_at;
    job.start_time = submit_at;
    job.end_time = submit_at + duration;
    scheduler.submit(job);
  };

  std::printf("submitting: healthy MD (4 nodes), storm WRF (8 nodes), then\n"
              "a queued CFD job that needs the storm's nodes\n\n");
  submit(7001, "good_user", "md_engine", 4, mc.start, 5 * util::kHour);
  submit(7002, "wrfuser42", "wrf_mdstorm", 8,
         mc.start + 10 * util::kMinute, 5 * util::kHour);
  submit(7003, "cfd_user", "cfd_scalar", 8, mc.start + util::kHour,
         2 * util::kHour);

  // Drive the world in sampling-interval steps, polling the responder the
  // way a supervising service would.
  for (int step = 1; step <= 6 * 9; ++step) {
    scheduler.run_until(mc.start + step * 10 * util::kMinute);
    monitor.drain();
    responder.poll();
  }
  scheduler.drain_jobs();
  monitor.drain();

  std::printf("\n-- first alerts from the online stream --\n");
  const auto alerts = monitor.online()->alerts();
  for (std::size_t i = 0; i < alerts.size() && i < 6; ++i) {
    std::printf("%s  %-9s  %-15s  value=%.0f\n",
                util::format_time(alerts[i].time).c_str(),
                alerts[i].hostname.c_str(), alerts[i].rule.c_str(),
                alerts[i].value);
  }
  std::printf("   ... %zu alerts total\n", alerts.size());

  std::printf("\n-- job outcomes --\n");
  for (const auto& job : scheduler.completed()) {
    std::printf("job %ld (%-10s %-12s) %-9s ran %s, waited %s\n", job.jobid,
                job.user.c_str(), job.profile.c_str(), job.status.c_str(),
                util::format_duration(job.runtime()).c_str(),
                util::format_duration(job.queue_wait()).c_str());
  }
  std::printf(
      "\nThe storm was cut short automatically; the queued CFD job got its\n"
      "nodes hours earlier than it would have, and the MDS never saw the\n"
      "sustained overload (records analyzed online: %zu).\n",
      monitor.online()->records_analyzed());
  return 0;
}
