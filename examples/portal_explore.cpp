// Interactive-style portal exploration over a generated population: runs a
// set of canned searches a consultant would issue, prints lists, detail
// views, histograms, and the daily report. A fifth example showing the
// analysis surface end to end without the case-study narrative.
//
//   ./examples/portal_explore [num_jobs]
#include <cstdio>
#include <cstdlib>

#include "pipeline/ingest.hpp"
#include "pipeline/minisim.hpp"
#include "portal/report.hpp"
#include "portal/search.hpp"
#include "portal/views.hpp"
#include "workload/generator.hpp"

using namespace tacc;

int main(int argc, char** argv) {
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 1200;
  workload::PopulationConfig config;
  config.num_jobs = num_jobs;
  config.storm_jobs = 25;
  auto jobs = workload::generate_population(config);
  db::Database database;
  pipeline::MiniSimOptions opts;
  opts.samples = 3;
  std::printf("ingesting %zu jobs...\n\n", jobs.size());
  ingest_population(database, jobs, opts);
  auto& table = database.table(pipeline::kJobsTable);

  struct Canned {
    const char* title;
    portal::PortalQuery query;
  };
  std::vector<Canned> searches;
  {
    portal::PortalQuery q;
    q.user = "wrfuser42";
    searches.push_back({"jobs by the storm user", q});
  }
  {
    portal::PortalQuery q;
    q.queue = "largemem";
    searches.push_back({"everything in the largemem queue", q});
  }
  {
    portal::PortalQuery q;
    q.status = "FAILED";
    q.search_fields = {"catastrophe__lt=0.25"};
    searches.push_back({"failed jobs with a mid-run CPU collapse", q});
  }
  {
    portal::PortalQuery q;
    q.search_fields = {"VecPercent__lt=0.01", "flops__gt=0.5"};
    searches.push_back({"real FP work, effectively unvectorized", q});
  }
  {
    portal::PortalQuery q;
    q.search_fields = {"PkgWatts__gt=150"};
    searches.push_back({"hottest nodes by RAPL package power", q});
  }

  for (const auto& s : searches) {
    std::printf("== %s ==\n", s.title);
    const auto rows = portal::run_query(table, s.query);
    std::fputs(portal::job_list_view(table, rows, 6).c_str(), stdout);
    std::printf("\n");
  }

  // Histograms for one of them.
  std::printf("== histograms: storm user's jobs ==\n");
  portal::PortalQuery q;
  q.user = "wrfuser42";
  std::fputs(
      portal::query_histograms(table, portal::run_query(table, q), 8)
          .c_str(),
      stdout);

  // "View all jobs for a given date" (Fig. 3's calendar), newest first.
  std::printf("== browse by date: 2015-11-17 ==\n");
  std::fputs(portal::job_list_view(
                 table,
                 portal::browse_date(table, util::make_time(2015, 11, 17)),
                 8)
                 .c_str(),
             stdout);
  std::printf("\n");

  // Daily report for a mid-quarter day.
  std::printf("== daily report ==\n\n");
  std::fputs(
      portal::daily_report(table, util::make_time(2015, 11, 17)).c_str(),
      stdout);
  return 0;
}
