// Offline replay workflow: run a monitored day, persist everything a site
// actually keeps on disk (the raw-stats spool plus the scheduler's
// accounting dump), then — as a fresh analysis process would — reload both
// files, rebuild the jobs database, and print the daily report. This is
// how historical days are (re)processed when metrics definitions change.
//
//   ./examples/replay_day
#include <cstdio>
#include <filesystem>

#include "core/scheduler.hpp"
#include "pipeline/ingest.hpp"
#include "portal/report.hpp"
#include "transport/spool.hpp"
#include "workload/acctfile.hpp"
#include "workload/generator.hpp"

using namespace tacc;

int main() {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "ts_replay_demo";
  fs::remove_all(root);

  const util::SimTime day = util::make_time(2016, 1, 12);

  // ---- Phase 1: the live day ---------------------------------------------
  {
    simhw::ClusterConfig cc;
    cc.num_nodes = 8;
    cc.topology = simhw::Topology{2, 4, false};
    cc.phi_fraction = 0.0;
    simhw::Cluster cluster(cc);
    core::MonitorConfig mc;
    mc.start = day;
    mc.online_analysis = false;
    core::ClusterMonitor monitor(cluster, mc);
    core::LiveScheduler scheduler(monitor, cluster.size());

    const char* profiles[] = {"wrf", "md_engine", "genomics_io",
                              "cfd_scalar", "mpi_gige"};
    for (long i = 0; i < 10; ++i) {
      workload::JobSpec job;
      job.jobid = 5200 + i;
      job.user = "user" + std::to_string(i % 4);
      job.account = "TG-" + std::to_string(i % 3);
      job.profile = profiles[i % 5];
      job.exe = workload::find_profile(job.profile).exe;
      job.nodes = 1 + static_cast<int>(i % 3);
      job.wayness = 8;
      job.submit_time = day + i * 90 * util::kMinute;
      job.start_time = job.submit_time;
      job.end_time = job.submit_time + 2 * util::kHour;
      scheduler.submit(job);
    }
    scheduler.drain_jobs(day + util::kDay);
    monitor.drain();

    // Persist what a site keeps: the spool and the accounting dump.
    transport::Spool spool(root / "spool");
    const auto files = spool.write_archive(monitor.archive());
    std::vector<workload::AccountingRecord> acct;
    for (const auto& done : scheduler.completed()) {
      std::vector<std::string> hosts;
      // Node list from the archive (the scheduler's epilog knows it too).
      for (const auto& host : monitor.archive().hosts()) {
        const auto log = monitor.archive().log(host);
        for (const auto& rec : log.records) {
          if (std::find(rec.jobids.begin(), rec.jobids.end(), done.jobid) !=
              rec.jobids.end()) {
            hosts.push_back(host);
            break;
          }
        }
      }
      acct.push_back(workload::to_accounting(done, hosts));
    }
    workload::write_accounting_file(root / "accounting.txt", acct);
    std::printf("live day done: %zu jobs, %zu records spooled into %zu "
                "files, accounting dump written\n",
                scheduler.completed().size(),
                monitor.archive().total_records(), files);
  }

  // ---- Phase 2: the replay (a fresh process, only files as input) --------
  {
    transport::Spool spool(root / "spool");
    transport::RawArchive archive;
    std::size_t records = 0;
    for (const auto& d : spool.days()) records += spool.load_day(d, archive);
    const auto acct = workload::read_accounting_file(root / "accounting.txt");
    std::printf("\nreplay: %zu records from %zu spool day(s), %zu "
                "accounting rows\n",
                records, spool.days().size(), acct.size());

    db::Database database;
    const auto ingested =
        pipeline::ingest_from_archive(database, archive, acct);
    std::printf("jobs rebuilt from disk: %zu\n\n", ingested);
    const auto& jobs = database.table(pipeline::kJobsTable);
    std::fputs(portal::daily_report(jobs, day).c_str(), stdout);
    std::printf("\nPer-project accounting:\n\n");
    std::fputs(portal::group_report(jobs, jobs.select({})).c_str(), stdout);
  }

  fs::remove_all(root);
  return 0;
}
