// One-shot raw collection, like running the tacc_stats executable by hand:
// probes the node (architecture, topology, devices), programs the
// performance counters, takes two samples a second apart while a job burns
// cycles, and dumps the raw stats file — schema header and all — to stdout.
// Also demonstrates the file-backed spool round trip.
//
//   ./examples/raw_stats_dump
#include <cstdio>
#include <filesystem>

#include "collect/registry.hpp"
#include "transport/spool.hpp"
#include "workload/engine.hpp"
#include "workload/generator.hpp"

using namespace tacc;

int main() {
  simhw::ClusterConfig cc;
  cc.num_nodes = 1;
  cc.topology = simhw::Topology{2, 8, false};
  simhw::Cluster cluster(cc);
  auto& node = cluster.node(0);

  const auto id = node.cpuid();
  std::printf("probed %s: family %d model %d (%s), %d sockets x %d cores, "
              "%d programmable PMCs/core\n\n",
              node.hostname().c_str(), id.family, id.model,
              node.arch().codename.c_str(), node.topology().sockets,
              node.topology().cores_per_socket,
              node.topology().pmcs_per_core());

  const util::SimTime t0 = util::make_time(2016, 1, 13, 14, 0);
  workload::Engine engine(cluster, t0);
  workload::JobSpec job;
  job.jobid = 4400123;
  job.user = "demo";
  job.profile = "fem_avx";
  job.exe = "ls-dyna";
  job.nodes = 1;
  job.wayness = 16;
  job.start_time = t0;
  job.end_time = t0 + util::kHour;
  engine.start_job(job, {0});

  collect::HostSampler sampler(node);
  auto log = sampler.make_log();
  log.records.push_back(sampler.sample(t0, {job.jobid}, "begin"));
  engine.advance(util::kMinute);
  log.records.push_back(sampler.sample(t0 + util::kMinute, {job.jobid}, ""));

  const std::string text = log.serialize();
  std::fputs(text.c_str(), stdout);

  // Spool round trip: persist, reload, verify.
  const auto root =
      std::filesystem::temp_directory_path() / "ts_raw_dump_demo";
  std::filesystem::remove_all(root);
  transport::Spool spool(root);
  spool.write_host(log);
  const auto reloaded = spool.read_host(transport::Spool::day_key(t0),
                                        node.hostname());
  std::printf("\nspooled to %s and reloaded: %zu records, %zu schemas, "
              "round-trip %s\n",
              root.string().c_str(), reloaded.records.size(),
              reloaded.schemas.size(),
              reloaded.serialize() == text ? "exact" : "MISMATCH");
  std::filesystem::remove_all(root);
  return 0;
}
