// Shared-node attribution example, paper section VI-C.
//
// Two jobs share one node. Each process start/stop fires the LD_PRELOAD
// constructor/destructor signal; every captured signal triggers a
// collection labeled with the current job list, so even second-long
// processes are bracketed by two data points. The race policy (one signal
// can queue behind a running ~0.09 s collection, further ones are missed)
// is visible in the stats.
//
//   ./examples/shared_nodes
#include <cstdio>

#include "collect/registry.hpp"
#include "core/sharednode.hpp"
#include "simhw/node.hpp"

using namespace tacc;

int main() {
  simhw::NodeConfig nc;
  nc.hostname = "c405-017";
  nc.topology = simhw::Topology{2, 8, false};
  simhw::Node node(nc);
  collect::HostSampler sampler(node);
  auto log = sampler.make_log();

  const util::SimTime t0 = util::make_time(2016, 1, 12, 10, 0);
  core::SharedNodeTracker tracker(
      [&](util::SimTime t, const std::string& mark) {
        log.records.push_back(
            sampler.sample(t, tracker.current_jobs(), mark));
      });

  std::printf("two jobs share %s; process events:\n\n",
              node.hostname().c_str());
  struct Event {
    double at_s;
    int pid;
    long job;
    bool start;
    const char* what;
  };
  const Event timeline[] = {
      {0.00, 101, 501, true, "job 501 rank 0 starts"},
      {0.00, 102, 501, true, "job 501 rank 1 starts (same instant: queued)"},
      {0.05, 103, 502, true, "job 502 starts inside the busy window"},
      {0.20, 104, 502, true, "job 502 helper starts"},
      {45.0, 103, 502, false, "job 502 main process exits"},
      {45.1, 104, 502, false, "job 502 helper exits"},
      {90.0, 101, 501, false, "job 501 rank 0 exits"},
      {90.2, 102, 501, false, "job 501 rank 1 exits"},
  };
  for (const auto& e : timeline) {
    const util::SimTime t = t0 + util::from_seconds(e.at_s);
    if (e.start) {
      tracker.process_started(t, e.pid, e.job);
    } else {
      tracker.process_ended(t, e.pid, e.job);
    }
    std::printf("t+%6.2fs  %-52s jobs now: [", e.at_s, e.what);
    const auto jobs = tracker.current_jobs();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      std::printf("%s%ld", i ? "," : "", jobs[i]);
    }
    std::printf("]\n");
  }

  const auto& stats = tracker.stats();
  std::printf("\nsignals received:   %llu\n",
              static_cast<unsigned long long>(stats.signals_received));
  std::printf("collections:        %llu\n",
              static_cast<unsigned long long>(stats.collections_triggered));
  std::printf("coalesced (queued): %llu\n",
              static_cast<unsigned long long>(stats.signals_coalesced));
  std::printf("missed (race):      %llu  <- the third signal inside 0.09 s\n",
              static_cast<unsigned long long>(stats.signals_missed));

  std::printf("\ncollected records and their job labels:\n");
  for (const auto& rec : log.records) {
    std::printf("  %s  %-9s jobs=[", util::format_time(rec.time).c_str(),
                rec.mark.c_str());
    for (std::size_t i = 0; i < rec.jobids.size(); ++i) {
      std::printf("%s%ld", i ? "," : "", rec.jobids[i]);
    }
    std::printf("]  (%zu device blocks)\n", rec.blocks.size());
  }
  std::printf(
      "\nWith jobs pinned to disjoint cores (cgroups), the per-core and\n"
      "per-process data in these records attribute cleanly; node-level\n"
      "counters (IB, Lustre) remain shared, as the paper cautions.\n");
  return 0;
}
