file(REMOVE_RECURSE
  "CMakeFiles/ts_core.dir/autoresponder.cpp.o"
  "CMakeFiles/ts_core.dir/autoresponder.cpp.o.d"
  "CMakeFiles/ts_core.dir/monitor.cpp.o"
  "CMakeFiles/ts_core.dir/monitor.cpp.o.d"
  "CMakeFiles/ts_core.dir/online.cpp.o"
  "CMakeFiles/ts_core.dir/online.cpp.o.d"
  "CMakeFiles/ts_core.dir/scheduler.cpp.o"
  "CMakeFiles/ts_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/ts_core.dir/sharednode.cpp.o"
  "CMakeFiles/ts_core.dir/sharednode.cpp.o.d"
  "libts_core.a"
  "libts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
