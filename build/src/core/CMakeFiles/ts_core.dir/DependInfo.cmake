
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autoresponder.cpp" "src/core/CMakeFiles/ts_core.dir/autoresponder.cpp.o" "gcc" "src/core/CMakeFiles/ts_core.dir/autoresponder.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/ts_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/ts_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/ts_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/ts_core.dir/online.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/ts_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/ts_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/sharednode.cpp" "src/core/CMakeFiles/ts_core.dir/sharednode.cpp.o" "gcc" "src/core/CMakeFiles/ts_core.dir/sharednode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ts_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/ts_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/ts_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ts_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ts_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
