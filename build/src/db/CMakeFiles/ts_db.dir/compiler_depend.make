# Empty compiler generated dependencies file for ts_db.
# This may be replaced when dependencies are built.
