file(REMOVE_RECURSE
  "libts_db.a"
)
