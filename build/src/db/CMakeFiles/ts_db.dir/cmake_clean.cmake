file(REMOVE_RECURSE
  "CMakeFiles/ts_db.dir/table.cpp.o"
  "CMakeFiles/ts_db.dir/table.cpp.o.d"
  "CMakeFiles/ts_db.dir/value.cpp.o"
  "CMakeFiles/ts_db.dir/value.cpp.o.d"
  "libts_db.a"
  "libts_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
