file(REMOVE_RECURSE
  "CMakeFiles/ts_tsdb.dir/store.cpp.o"
  "CMakeFiles/ts_tsdb.dir/store.cpp.o.d"
  "libts_tsdb.a"
  "libts_tsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_tsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
