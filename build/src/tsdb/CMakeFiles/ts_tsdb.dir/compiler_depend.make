# Empty compiler generated dependencies file for ts_tsdb.
# This may be replaced when dependencies are built.
