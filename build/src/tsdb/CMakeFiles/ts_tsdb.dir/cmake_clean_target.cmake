file(REMOVE_RECURSE
  "libts_tsdb.a"
)
