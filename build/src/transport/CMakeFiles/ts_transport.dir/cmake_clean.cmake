file(REMOVE_RECURSE
  "CMakeFiles/ts_transport.dir/archive.cpp.o"
  "CMakeFiles/ts_transport.dir/archive.cpp.o.d"
  "CMakeFiles/ts_transport.dir/broker.cpp.o"
  "CMakeFiles/ts_transport.dir/broker.cpp.o.d"
  "CMakeFiles/ts_transport.dir/consumer.cpp.o"
  "CMakeFiles/ts_transport.dir/consumer.cpp.o.d"
  "CMakeFiles/ts_transport.dir/cron.cpp.o"
  "CMakeFiles/ts_transport.dir/cron.cpp.o.d"
  "CMakeFiles/ts_transport.dir/daemon.cpp.o"
  "CMakeFiles/ts_transport.dir/daemon.cpp.o.d"
  "CMakeFiles/ts_transport.dir/spool.cpp.o"
  "CMakeFiles/ts_transport.dir/spool.cpp.o.d"
  "libts_transport.a"
  "libts_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
