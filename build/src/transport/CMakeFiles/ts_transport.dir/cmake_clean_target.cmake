file(REMOVE_RECURSE
  "libts_transport.a"
)
