
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/archive.cpp" "src/transport/CMakeFiles/ts_transport.dir/archive.cpp.o" "gcc" "src/transport/CMakeFiles/ts_transport.dir/archive.cpp.o.d"
  "/root/repo/src/transport/broker.cpp" "src/transport/CMakeFiles/ts_transport.dir/broker.cpp.o" "gcc" "src/transport/CMakeFiles/ts_transport.dir/broker.cpp.o.d"
  "/root/repo/src/transport/consumer.cpp" "src/transport/CMakeFiles/ts_transport.dir/consumer.cpp.o" "gcc" "src/transport/CMakeFiles/ts_transport.dir/consumer.cpp.o.d"
  "/root/repo/src/transport/cron.cpp" "src/transport/CMakeFiles/ts_transport.dir/cron.cpp.o" "gcc" "src/transport/CMakeFiles/ts_transport.dir/cron.cpp.o.d"
  "/root/repo/src/transport/daemon.cpp" "src/transport/CMakeFiles/ts_transport.dir/daemon.cpp.o" "gcc" "src/transport/CMakeFiles/ts_transport.dir/daemon.cpp.o.d"
  "/root/repo/src/transport/spool.cpp" "src/transport/CMakeFiles/ts_transport.dir/spool.cpp.o" "gcc" "src/transport/CMakeFiles/ts_transport.dir/spool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ts_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/ts_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/ts_collect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
