# Empty compiler generated dependencies file for ts_transport.
# This may be replaced when dependencies are built.
