file(REMOVE_RECURSE
  "CMakeFiles/ts_util.dir/clock.cpp.o"
  "CMakeFiles/ts_util.dir/clock.cpp.o.d"
  "CMakeFiles/ts_util.dir/log.cpp.o"
  "CMakeFiles/ts_util.dir/log.cpp.o.d"
  "CMakeFiles/ts_util.dir/rng.cpp.o"
  "CMakeFiles/ts_util.dir/rng.cpp.o.d"
  "CMakeFiles/ts_util.dir/stats.cpp.o"
  "CMakeFiles/ts_util.dir/stats.cpp.o.d"
  "CMakeFiles/ts_util.dir/strings.cpp.o"
  "CMakeFiles/ts_util.dir/strings.cpp.o.d"
  "CMakeFiles/ts_util.dir/table.cpp.o"
  "CMakeFiles/ts_util.dir/table.cpp.o.d"
  "CMakeFiles/ts_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ts_util.dir/thread_pool.cpp.o.d"
  "libts_util.a"
  "libts_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
