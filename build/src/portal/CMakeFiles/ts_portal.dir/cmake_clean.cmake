file(REMOVE_RECURSE
  "CMakeFiles/ts_portal.dir/plots.cpp.o"
  "CMakeFiles/ts_portal.dir/plots.cpp.o.d"
  "CMakeFiles/ts_portal.dir/report.cpp.o"
  "CMakeFiles/ts_portal.dir/report.cpp.o.d"
  "CMakeFiles/ts_portal.dir/search.cpp.o"
  "CMakeFiles/ts_portal.dir/search.cpp.o.d"
  "CMakeFiles/ts_portal.dir/views.cpp.o"
  "CMakeFiles/ts_portal.dir/views.cpp.o.d"
  "libts_portal.a"
  "libts_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
