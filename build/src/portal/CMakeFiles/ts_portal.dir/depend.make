# Empty dependencies file for ts_portal.
# This may be replaced when dependencies are built.
