file(REMOVE_RECURSE
  "libts_portal.a"
)
