# Empty dependencies file for ts_collect.
# This may be replaced when dependencies are built.
