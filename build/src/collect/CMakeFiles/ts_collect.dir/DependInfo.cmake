
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collect/collectors_cpu.cpp" "src/collect/CMakeFiles/ts_collect.dir/collectors_cpu.cpp.o" "gcc" "src/collect/CMakeFiles/ts_collect.dir/collectors_cpu.cpp.o.d"
  "/root/repo/src/collect/collectors_extra.cpp" "src/collect/CMakeFiles/ts_collect.dir/collectors_extra.cpp.o" "gcc" "src/collect/CMakeFiles/ts_collect.dir/collectors_extra.cpp.o.d"
  "/root/repo/src/collect/collectors_lustre.cpp" "src/collect/CMakeFiles/ts_collect.dir/collectors_lustre.cpp.o" "gcc" "src/collect/CMakeFiles/ts_collect.dir/collectors_lustre.cpp.o.d"
  "/root/repo/src/collect/collectors_net.cpp" "src/collect/CMakeFiles/ts_collect.dir/collectors_net.cpp.o" "gcc" "src/collect/CMakeFiles/ts_collect.dir/collectors_net.cpp.o.d"
  "/root/repo/src/collect/collectors_os.cpp" "src/collect/CMakeFiles/ts_collect.dir/collectors_os.cpp.o" "gcc" "src/collect/CMakeFiles/ts_collect.dir/collectors_os.cpp.o.d"
  "/root/repo/src/collect/collectors_uncore.cpp" "src/collect/CMakeFiles/ts_collect.dir/collectors_uncore.cpp.o" "gcc" "src/collect/CMakeFiles/ts_collect.dir/collectors_uncore.cpp.o.d"
  "/root/repo/src/collect/rawfile.cpp" "src/collect/CMakeFiles/ts_collect.dir/rawfile.cpp.o" "gcc" "src/collect/CMakeFiles/ts_collect.dir/rawfile.cpp.o.d"
  "/root/repo/src/collect/registry.cpp" "src/collect/CMakeFiles/ts_collect.dir/registry.cpp.o" "gcc" "src/collect/CMakeFiles/ts_collect.dir/registry.cpp.o.d"
  "/root/repo/src/collect/schema.cpp" "src/collect/CMakeFiles/ts_collect.dir/schema.cpp.o" "gcc" "src/collect/CMakeFiles/ts_collect.dir/schema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ts_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/ts_simhw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
