file(REMOVE_RECURSE
  "CMakeFiles/ts_collect.dir/collectors_cpu.cpp.o"
  "CMakeFiles/ts_collect.dir/collectors_cpu.cpp.o.d"
  "CMakeFiles/ts_collect.dir/collectors_extra.cpp.o"
  "CMakeFiles/ts_collect.dir/collectors_extra.cpp.o.d"
  "CMakeFiles/ts_collect.dir/collectors_lustre.cpp.o"
  "CMakeFiles/ts_collect.dir/collectors_lustre.cpp.o.d"
  "CMakeFiles/ts_collect.dir/collectors_net.cpp.o"
  "CMakeFiles/ts_collect.dir/collectors_net.cpp.o.d"
  "CMakeFiles/ts_collect.dir/collectors_os.cpp.o"
  "CMakeFiles/ts_collect.dir/collectors_os.cpp.o.d"
  "CMakeFiles/ts_collect.dir/collectors_uncore.cpp.o"
  "CMakeFiles/ts_collect.dir/collectors_uncore.cpp.o.d"
  "CMakeFiles/ts_collect.dir/rawfile.cpp.o"
  "CMakeFiles/ts_collect.dir/rawfile.cpp.o.d"
  "CMakeFiles/ts_collect.dir/registry.cpp.o"
  "CMakeFiles/ts_collect.dir/registry.cpp.o.d"
  "CMakeFiles/ts_collect.dir/schema.cpp.o"
  "CMakeFiles/ts_collect.dir/schema.cpp.o.d"
  "libts_collect.a"
  "libts_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
