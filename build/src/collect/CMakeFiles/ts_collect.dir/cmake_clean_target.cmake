file(REMOVE_RECURSE
  "libts_collect.a"
)
