file(REMOVE_RECURSE
  "CMakeFiles/ts_workload.dir/acctfile.cpp.o"
  "CMakeFiles/ts_workload.dir/acctfile.cpp.o.d"
  "CMakeFiles/ts_workload.dir/apps.cpp.o"
  "CMakeFiles/ts_workload.dir/apps.cpp.o.d"
  "CMakeFiles/ts_workload.dir/engine.cpp.o"
  "CMakeFiles/ts_workload.dir/engine.cpp.o.d"
  "CMakeFiles/ts_workload.dir/generator.cpp.o"
  "CMakeFiles/ts_workload.dir/generator.cpp.o.d"
  "libts_workload.a"
  "libts_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
