file(REMOVE_RECURSE
  "libts_workload.a"
)
