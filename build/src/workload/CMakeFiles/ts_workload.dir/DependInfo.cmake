
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/acctfile.cpp" "src/workload/CMakeFiles/ts_workload.dir/acctfile.cpp.o" "gcc" "src/workload/CMakeFiles/ts_workload.dir/acctfile.cpp.o.d"
  "/root/repo/src/workload/apps.cpp" "src/workload/CMakeFiles/ts_workload.dir/apps.cpp.o" "gcc" "src/workload/CMakeFiles/ts_workload.dir/apps.cpp.o.d"
  "/root/repo/src/workload/engine.cpp" "src/workload/CMakeFiles/ts_workload.dir/engine.cpp.o" "gcc" "src/workload/CMakeFiles/ts_workload.dir/engine.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/ts_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/ts_workload.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ts_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/ts_simhw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
