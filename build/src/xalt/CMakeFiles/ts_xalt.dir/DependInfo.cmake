
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xalt/xalt.cpp" "src/xalt/CMakeFiles/ts_xalt.dir/xalt.cpp.o" "gcc" "src/xalt/CMakeFiles/ts_xalt.dir/xalt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ts_util.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/ts_db.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ts_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/ts_simhw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
