# Empty dependencies file for ts_xalt.
# This may be replaced when dependencies are built.
