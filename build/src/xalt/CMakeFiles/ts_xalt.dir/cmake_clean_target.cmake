file(REMOVE_RECURSE
  "libts_xalt.a"
)
