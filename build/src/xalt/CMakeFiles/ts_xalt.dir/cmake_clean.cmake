file(REMOVE_RECURSE
  "CMakeFiles/ts_xalt.dir/xalt.cpp.o"
  "CMakeFiles/ts_xalt.dir/xalt.cpp.o.d"
  "libts_xalt.a"
  "libts_xalt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_xalt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
