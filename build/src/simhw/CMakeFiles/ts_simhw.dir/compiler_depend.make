# Empty compiler generated dependencies file for ts_simhw.
# This may be replaced when dependencies are built.
