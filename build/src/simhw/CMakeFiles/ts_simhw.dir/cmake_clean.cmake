file(REMOVE_RECURSE
  "CMakeFiles/ts_simhw.dir/arch.cpp.o"
  "CMakeFiles/ts_simhw.dir/arch.cpp.o.d"
  "CMakeFiles/ts_simhw.dir/cluster.cpp.o"
  "CMakeFiles/ts_simhw.dir/cluster.cpp.o.d"
  "CMakeFiles/ts_simhw.dir/node.cpp.o"
  "CMakeFiles/ts_simhw.dir/node.cpp.o.d"
  "CMakeFiles/ts_simhw.dir/procfs.cpp.o"
  "CMakeFiles/ts_simhw.dir/procfs.cpp.o.d"
  "libts_simhw.a"
  "libts_simhw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_simhw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
