file(REMOVE_RECURSE
  "libts_simhw.a"
)
