
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simhw/arch.cpp" "src/simhw/CMakeFiles/ts_simhw.dir/arch.cpp.o" "gcc" "src/simhw/CMakeFiles/ts_simhw.dir/arch.cpp.o.d"
  "/root/repo/src/simhw/cluster.cpp" "src/simhw/CMakeFiles/ts_simhw.dir/cluster.cpp.o" "gcc" "src/simhw/CMakeFiles/ts_simhw.dir/cluster.cpp.o.d"
  "/root/repo/src/simhw/node.cpp" "src/simhw/CMakeFiles/ts_simhw.dir/node.cpp.o" "gcc" "src/simhw/CMakeFiles/ts_simhw.dir/node.cpp.o.d"
  "/root/repo/src/simhw/procfs.cpp" "src/simhw/CMakeFiles/ts_simhw.dir/procfs.cpp.o" "gcc" "src/simhw/CMakeFiles/ts_simhw.dir/procfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
