file(REMOVE_RECURSE
  "CMakeFiles/ts_pipeline.dir/flags.cpp.o"
  "CMakeFiles/ts_pipeline.dir/flags.cpp.o.d"
  "CMakeFiles/ts_pipeline.dir/ingest.cpp.o"
  "CMakeFiles/ts_pipeline.dir/ingest.cpp.o.d"
  "CMakeFiles/ts_pipeline.dir/jobmap.cpp.o"
  "CMakeFiles/ts_pipeline.dir/jobmap.cpp.o.d"
  "CMakeFiles/ts_pipeline.dir/metrics.cpp.o"
  "CMakeFiles/ts_pipeline.dir/metrics.cpp.o.d"
  "CMakeFiles/ts_pipeline.dir/minisim.cpp.o"
  "CMakeFiles/ts_pipeline.dir/minisim.cpp.o.d"
  "libts_pipeline.a"
  "libts_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
