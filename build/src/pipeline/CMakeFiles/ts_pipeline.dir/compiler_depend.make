# Empty compiler generated dependencies file for ts_pipeline.
# This may be replaced when dependencies are built.
