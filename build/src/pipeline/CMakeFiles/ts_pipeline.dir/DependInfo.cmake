
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/flags.cpp" "src/pipeline/CMakeFiles/ts_pipeline.dir/flags.cpp.o" "gcc" "src/pipeline/CMakeFiles/ts_pipeline.dir/flags.cpp.o.d"
  "/root/repo/src/pipeline/ingest.cpp" "src/pipeline/CMakeFiles/ts_pipeline.dir/ingest.cpp.o" "gcc" "src/pipeline/CMakeFiles/ts_pipeline.dir/ingest.cpp.o.d"
  "/root/repo/src/pipeline/jobmap.cpp" "src/pipeline/CMakeFiles/ts_pipeline.dir/jobmap.cpp.o" "gcc" "src/pipeline/CMakeFiles/ts_pipeline.dir/jobmap.cpp.o.d"
  "/root/repo/src/pipeline/metrics.cpp" "src/pipeline/CMakeFiles/ts_pipeline.dir/metrics.cpp.o" "gcc" "src/pipeline/CMakeFiles/ts_pipeline.dir/metrics.cpp.o.d"
  "/root/repo/src/pipeline/minisim.cpp" "src/pipeline/CMakeFiles/ts_pipeline.dir/minisim.cpp.o" "gcc" "src/pipeline/CMakeFiles/ts_pipeline.dir/minisim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ts_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/ts_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/ts_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ts_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ts_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/ts_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
