file(REMOVE_RECURSE
  "libts_pipeline.a"
)
