# Empty dependencies file for bench_fig3_portal_queries.
# This may be replaced when dependencies are built.
