file(REMOVE_RECURSE
  "../bench/bench_fig3_portal_queries"
  "../bench/bench_fig3_portal_queries.pdb"
  "CMakeFiles/bench_fig3_portal_queries.dir/bench_fig3_portal_queries.cpp.o"
  "CMakeFiles/bench_fig3_portal_queries.dir/bench_fig3_portal_queries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_portal_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
