# Empty dependencies file for bench_fig5_job_timeseries.
# This may be replaced when dependencies are built.
