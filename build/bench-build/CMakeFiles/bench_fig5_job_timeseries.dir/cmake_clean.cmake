file(REMOVE_RECURSE
  "../bench/bench_fig5_job_timeseries"
  "../bench/bench_fig5_job_timeseries.pdb"
  "CMakeFiles/bench_fig5_job_timeseries.dir/bench_fig5_job_timeseries.cpp.o"
  "CMakeFiles/bench_fig5_job_timeseries.dir/bench_fig5_job_timeseries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_job_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
