# Empty dependencies file for bench_sharednode.
# This may be replaced when dependencies are built.
