file(REMOVE_RECURSE
  "../bench/bench_sharednode"
  "../bench/bench_sharednode.pdb"
  "CMakeFiles/bench_sharednode.dir/bench_sharednode.cpp.o"
  "CMakeFiles/bench_sharednode.dir/bench_sharednode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharednode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
