# Empty compiler generated dependencies file for bench_sec5_case_study.
# This may be replaced when dependencies are built.
