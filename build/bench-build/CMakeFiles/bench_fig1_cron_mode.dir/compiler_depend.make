# Empty compiler generated dependencies file for bench_fig1_cron_mode.
# This may be replaced when dependencies are built.
