file(REMOVE_RECURSE
  "../bench/bench_fig1_cron_mode"
  "../bench/bench_fig1_cron_mode.pdb"
  "CMakeFiles/bench_fig1_cron_mode.dir/bench_fig1_cron_mode.cpp.o"
  "CMakeFiles/bench_fig1_cron_mode.dir/bench_fig1_cron_mode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_cron_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
