file(REMOVE_RECURSE
  "../bench/bench_tsdb_interference"
  "../bench/bench_tsdb_interference.pdb"
  "CMakeFiles/bench_tsdb_interference.dir/bench_tsdb_interference.cpp.o"
  "CMakeFiles/bench_tsdb_interference.dir/bench_tsdb_interference.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tsdb_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
