# Empty compiler generated dependencies file for bench_tsdb_interference.
# This may be replaced when dependencies are built.
