file(REMOVE_RECURSE
  "../bench/bench_fig2_daemon_mode"
  "../bench/bench_fig2_daemon_mode.pdb"
  "CMakeFiles/bench_fig2_daemon_mode.dir/bench_fig2_daemon_mode.cpp.o"
  "CMakeFiles/bench_fig2_daemon_mode.dir/bench_fig2_daemon_mode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_daemon_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
