# Empty dependencies file for bench_fig2_daemon_mode.
# This may be replaced when dependencies are built.
