file(REMOVE_RECURSE
  "../bench/bench_sec5_population"
  "../bench/bench_sec5_population.pdb"
  "CMakeFiles/bench_sec5_population.dir/bench_sec5_population.cpp.o"
  "CMakeFiles/bench_sec5_population.dir/bench_sec5_population.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
