# Empty dependencies file for replay_day.
# This may be replaced when dependencies are built.
