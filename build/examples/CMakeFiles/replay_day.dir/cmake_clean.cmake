file(REMOVE_RECURSE
  "CMakeFiles/replay_day.dir/replay_day.cpp.o"
  "CMakeFiles/replay_day.dir/replay_day.cpp.o.d"
  "replay_day"
  "replay_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
