# Empty compiler generated dependencies file for raw_stats_dump.
# This may be replaced when dependencies are built.
