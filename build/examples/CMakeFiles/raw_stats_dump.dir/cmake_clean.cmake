file(REMOVE_RECURSE
  "CMakeFiles/raw_stats_dump.dir/raw_stats_dump.cpp.o"
  "CMakeFiles/raw_stats_dump.dir/raw_stats_dump.cpp.o.d"
  "raw_stats_dump"
  "raw_stats_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_stats_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
