# Empty compiler generated dependencies file for online_alerts.
# This may be replaced when dependencies are built.
