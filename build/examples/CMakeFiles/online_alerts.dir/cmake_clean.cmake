file(REMOVE_RECURSE
  "CMakeFiles/online_alerts.dir/online_alerts.cpp.o"
  "CMakeFiles/online_alerts.dir/online_alerts.cpp.o.d"
  "online_alerts"
  "online_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
