file(REMOVE_RECURSE
  "CMakeFiles/portal_explore.dir/portal_explore.cpp.o"
  "CMakeFiles/portal_explore.dir/portal_explore.cpp.o.d"
  "portal_explore"
  "portal_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portal_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
