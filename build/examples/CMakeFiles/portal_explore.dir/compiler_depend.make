# Empty compiler generated dependencies file for portal_explore.
# This may be replaced when dependencies are built.
