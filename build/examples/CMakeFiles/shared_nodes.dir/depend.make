# Empty dependencies file for shared_nodes.
# This may be replaced when dependencies are built.
