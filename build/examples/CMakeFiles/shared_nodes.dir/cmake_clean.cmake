file(REMOVE_RECURSE
  "CMakeFiles/shared_nodes.dir/shared_nodes.cpp.o"
  "CMakeFiles/shared_nodes.dir/shared_nodes.cpp.o.d"
  "shared_nodes"
  "shared_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
