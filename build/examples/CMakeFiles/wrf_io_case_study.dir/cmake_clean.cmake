file(REMOVE_RECURSE
  "CMakeFiles/wrf_io_case_study.dir/wrf_io_case_study.cpp.o"
  "CMakeFiles/wrf_io_case_study.dir/wrf_io_case_study.cpp.o.d"
  "wrf_io_case_study"
  "wrf_io_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrf_io_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
