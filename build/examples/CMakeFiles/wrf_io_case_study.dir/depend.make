# Empty dependencies file for wrf_io_case_study.
# This may be replaced when dependencies are built.
