file(REMOVE_RECURSE
  "CMakeFiles/test_live_scheduler.dir/test_live_scheduler.cpp.o"
  "CMakeFiles/test_live_scheduler.dir/test_live_scheduler.cpp.o.d"
  "test_live_scheduler"
  "test_live_scheduler.pdb"
  "test_live_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_live_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
