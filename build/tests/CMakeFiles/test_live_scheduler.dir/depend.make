# Empty dependencies file for test_live_scheduler.
# This may be replaced when dependencies are built.
