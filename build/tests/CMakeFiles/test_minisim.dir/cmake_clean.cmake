file(REMOVE_RECURSE
  "CMakeFiles/test_minisim.dir/test_minisim.cpp.o"
  "CMakeFiles/test_minisim.dir/test_minisim.cpp.o.d"
  "test_minisim"
  "test_minisim.pdb"
  "test_minisim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
