# Empty dependencies file for test_minisim.
# This may be replaced when dependencies are built.
