file(REMOVE_RECURSE
  "CMakeFiles/test_transport_modes.dir/test_transport_modes.cpp.o"
  "CMakeFiles/test_transport_modes.dir/test_transport_modes.cpp.o.d"
  "test_transport_modes"
  "test_transport_modes.pdb"
  "test_transport_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
