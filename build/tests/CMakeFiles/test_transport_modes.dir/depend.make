# Empty dependencies file for test_transport_modes.
# This may be replaced when dependencies are built.
