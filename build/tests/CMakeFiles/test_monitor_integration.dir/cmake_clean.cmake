file(REMOVE_RECURSE
  "CMakeFiles/test_monitor_integration.dir/test_monitor_integration.cpp.o"
  "CMakeFiles/test_monitor_integration.dir/test_monitor_integration.cpp.o.d"
  "test_monitor_integration"
  "test_monitor_integration.pdb"
  "test_monitor_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitor_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
