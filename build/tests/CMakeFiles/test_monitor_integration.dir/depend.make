# Empty dependencies file for test_monitor_integration.
# This may be replaced when dependencies are built.
