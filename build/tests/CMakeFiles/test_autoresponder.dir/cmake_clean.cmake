file(REMOVE_RECURSE
  "CMakeFiles/test_autoresponder.dir/test_autoresponder.cpp.o"
  "CMakeFiles/test_autoresponder.dir/test_autoresponder.cpp.o.d"
  "test_autoresponder"
  "test_autoresponder.pdb"
  "test_autoresponder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autoresponder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
