# Empty compiler generated dependencies file for test_autoresponder.
# This may be replaced when dependencies are built.
