# Empty compiler generated dependencies file for test_rawfile.
# This may be replaced when dependencies are built.
