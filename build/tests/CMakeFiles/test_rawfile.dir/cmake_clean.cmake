file(REMOVE_RECURSE
  "CMakeFiles/test_rawfile.dir/test_rawfile.cpp.o"
  "CMakeFiles/test_rawfile.dir/test_rawfile.cpp.o.d"
  "test_rawfile"
  "test_rawfile.pdb"
  "test_rawfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rawfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
