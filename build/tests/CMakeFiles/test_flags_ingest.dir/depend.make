# Empty dependencies file for test_flags_ingest.
# This may be replaced when dependencies are built.
