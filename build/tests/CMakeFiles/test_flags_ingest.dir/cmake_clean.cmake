file(REMOVE_RECURSE
  "CMakeFiles/test_flags_ingest.dir/test_flags_ingest.cpp.o"
  "CMakeFiles/test_flags_ingest.dir/test_flags_ingest.cpp.o.d"
  "test_flags_ingest"
  "test_flags_ingest.pdb"
  "test_flags_ingest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flags_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
