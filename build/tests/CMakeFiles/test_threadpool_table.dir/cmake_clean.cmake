file(REMOVE_RECURSE
  "CMakeFiles/test_threadpool_table.dir/test_threadpool_table.cpp.o"
  "CMakeFiles/test_threadpool_table.dir/test_threadpool_table.cpp.o.d"
  "test_threadpool_table"
  "test_threadpool_table.pdb"
  "test_threadpool_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threadpool_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
