# Empty dependencies file for test_threadpool_table.
# This may be replaced when dependencies are built.
