# Empty compiler generated dependencies file for test_acctfile.
# This may be replaced when dependencies are built.
