file(REMOVE_RECURSE
  "CMakeFiles/test_acctfile.dir/test_acctfile.cpp.o"
  "CMakeFiles/test_acctfile.dir/test_acctfile.cpp.o.d"
  "test_acctfile"
  "test_acctfile.pdb"
  "test_acctfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acctfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
