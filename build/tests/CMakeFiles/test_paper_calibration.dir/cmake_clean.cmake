file(REMOVE_RECURSE
  "CMakeFiles/test_paper_calibration.dir/test_paper_calibration.cpp.o"
  "CMakeFiles/test_paper_calibration.dir/test_paper_calibration.cpp.o.d"
  "test_paper_calibration"
  "test_paper_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
