# Empty compiler generated dependencies file for test_paper_calibration.
# This may be replaced when dependencies are built.
