# Empty dependencies file for test_xalt_spool.
# This may be replaced when dependencies are built.
