file(REMOVE_RECURSE
  "CMakeFiles/test_xalt_spool.dir/test_xalt_spool.cpp.o"
  "CMakeFiles/test_xalt_spool.dir/test_xalt_spool.cpp.o.d"
  "test_xalt_spool"
  "test_xalt_spool.pdb"
  "test_xalt_spool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xalt_spool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
