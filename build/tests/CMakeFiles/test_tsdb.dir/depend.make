# Empty dependencies file for test_tsdb.
# This may be replaced when dependencies are built.
