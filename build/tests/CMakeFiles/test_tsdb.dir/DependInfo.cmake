
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tsdb.cpp" "tests/CMakeFiles/test_tsdb.dir/test_tsdb.cpp.o" "gcc" "tests/CMakeFiles/test_tsdb.dir/test_tsdb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/ts_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/portal/CMakeFiles/ts_portal.dir/DependInfo.cmake"
  "/root/repo/build/src/xalt/CMakeFiles/ts_xalt.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/ts_db.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/ts_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ts_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ts_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/ts_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/ts_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
