file(REMOVE_RECURSE
  "CMakeFiles/test_clock_strings.dir/test_clock_strings.cpp.o"
  "CMakeFiles/test_clock_strings.dir/test_clock_strings.cpp.o.d"
  "test_clock_strings"
  "test_clock_strings.pdb"
  "test_clock_strings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clock_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
