# Empty dependencies file for test_transport_equivalence.
# This may be replaced when dependencies are built.
