file(REMOVE_RECURSE
  "CMakeFiles/test_transport_equivalence.dir/test_transport_equivalence.cpp.o"
  "CMakeFiles/test_transport_equivalence.dir/test_transport_equivalence.cpp.o.d"
  "test_transport_equivalence"
  "test_transport_equivalence.pdb"
  "test_transport_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
