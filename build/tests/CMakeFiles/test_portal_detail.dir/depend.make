# Empty dependencies file for test_portal_detail.
# This may be replaced when dependencies are built.
