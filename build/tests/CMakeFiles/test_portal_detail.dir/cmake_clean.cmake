file(REMOVE_RECURSE
  "CMakeFiles/test_portal_detail.dir/test_portal_detail.cpp.o"
  "CMakeFiles/test_portal_detail.dir/test_portal_detail.cpp.o.d"
  "test_portal_detail"
  "test_portal_detail.pdb"
  "test_portal_detail[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_portal_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
