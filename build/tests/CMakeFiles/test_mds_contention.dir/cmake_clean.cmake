file(REMOVE_RECURSE
  "CMakeFiles/test_mds_contention.dir/test_mds_contention.cpp.o"
  "CMakeFiles/test_mds_contention.dir/test_mds_contention.cpp.o.d"
  "test_mds_contention"
  "test_mds_contention.pdb"
  "test_mds_contention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mds_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
