# Empty compiler generated dependencies file for test_mds_contention.
# This may be replaced when dependencies are built.
