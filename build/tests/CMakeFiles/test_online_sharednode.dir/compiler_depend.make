# Empty compiler generated dependencies file for test_online_sharednode.
# This may be replaced when dependencies are built.
