file(REMOVE_RECURSE
  "CMakeFiles/test_online_sharednode.dir/test_online_sharednode.cpp.o"
  "CMakeFiles/test_online_sharednode.dir/test_online_sharednode.cpp.o.d"
  "test_online_sharednode"
  "test_online_sharednode.pdb"
  "test_online_sharednode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_sharednode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
