file(REMOVE_RECURSE
  "CMakeFiles/test_portal.dir/test_portal.cpp.o"
  "CMakeFiles/test_portal.dir/test_portal.cpp.o.d"
  "test_portal"
  "test_portal.pdb"
  "test_portal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
