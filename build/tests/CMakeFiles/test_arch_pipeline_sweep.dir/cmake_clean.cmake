file(REMOVE_RECURSE
  "CMakeFiles/test_arch_pipeline_sweep.dir/test_arch_pipeline_sweep.cpp.o"
  "CMakeFiles/test_arch_pipeline_sweep.dir/test_arch_pipeline_sweep.cpp.o.d"
  "test_arch_pipeline_sweep"
  "test_arch_pipeline_sweep.pdb"
  "test_arch_pipeline_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_pipeline_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
