# Empty dependencies file for test_arch_pipeline_sweep.
# This may be replaced when dependencies are built.
