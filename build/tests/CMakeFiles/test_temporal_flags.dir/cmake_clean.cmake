file(REMOVE_RECURSE
  "CMakeFiles/test_temporal_flags.dir/test_temporal_flags.cpp.o"
  "CMakeFiles/test_temporal_flags.dir/test_temporal_flags.cpp.o.d"
  "test_temporal_flags"
  "test_temporal_flags.pdb"
  "test_temporal_flags[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_temporal_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
