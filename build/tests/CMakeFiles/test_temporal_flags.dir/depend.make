# Empty dependencies file for test_temporal_flags.
# This may be replaced when dependencies are built.
