file(REMOVE_RECURSE
  "CMakeFiles/test_collectors_extra.dir/test_collectors_extra.cpp.o"
  "CMakeFiles/test_collectors_extra.dir/test_collectors_extra.cpp.o.d"
  "test_collectors_extra"
  "test_collectors_extra.pdb"
  "test_collectors_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collectors_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
