# Empty compiler generated dependencies file for test_collectors_extra.
# This may be replaced when dependencies are built.
