# Empty compiler generated dependencies file for test_ordering_rate.
# This may be replaced when dependencies are built.
