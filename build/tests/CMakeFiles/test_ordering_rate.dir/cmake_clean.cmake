file(REMOVE_RECURSE
  "CMakeFiles/test_ordering_rate.dir/test_ordering_rate.cpp.o"
  "CMakeFiles/test_ordering_rate.dir/test_ordering_rate.cpp.o.d"
  "test_ordering_rate"
  "test_ordering_rate.pdb"
  "test_ordering_rate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ordering_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
